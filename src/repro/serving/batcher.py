"""Dynamic batching: max-batch-size + max-wait-timeout admission.

Replaces the seed assumption that requests arrive exactly at batch
boundaries. A batch launches when either it is full or the oldest waiting
request has waited ``max_wait_seconds`` (and the replica is free); partial
batches execute at the configured batch shape, so service time comes from
the engine's backend once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.telemetry.metrics import power_of_two_buckets
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class BatchingPolicy:
    """Admission policy of one replica's batcher.

    ``max_wait_seconds = 0`` is the greedy policy: launch with whatever has
    arrived the moment the replica frees up (the seed's batch-boundary
    behaviour when arrivals align with batch completions).
    """

    max_batch_size: int
    max_wait_seconds: float = 0.0

    def __post_init__(self) -> None:
        check_positive("max_batch_size", self.max_batch_size)
        check_non_negative("max_wait_seconds", self.max_wait_seconds)


@dataclass(frozen=True)
class ScheduledBatch:
    """One executed batch over requests ``[first, last)`` of the trace."""

    first: int
    last: int
    start_seconds: float
    service_seconds: float

    @property
    def size(self) -> int:
        return self.last - self.first

    @property
    def finish_seconds(self) -> float:
        return self.start_seconds + self.service_seconds


class DynamicBatcher:
    """Event-driven single-replica batching simulation.

    Given a sorted arrival trace and a per-batch service-time function, the
    batcher walks the trace: the replica opens a batch at
    ``max(free_at, oldest arrival)``, admits requests until the batch fills
    or the oldest request's wait deadline passes, then executes.
    """

    def __init__(self, policy: BatchingPolicy,
                 lookahead: Optional[Callable[[ScheduledBatch, np.ndarray],
                                              None]] = None) -> None:
        self.policy = policy
        #: lookahead consumer: called with (batch, the batch's block ids)
        #: the moment each batch is formed, *before* it is dispatched — the
        #: seam batched ORAM access plans against (LAORAM). With no
        #: consumer registered the serve path is byte-identical to before.
        self.lookahead = lookahead

    def schedule(self, arrivals: Sequence[float],
                 service_time: Callable[[int], float],
                 block_ids: Optional[np.ndarray] = None
                 ) -> List[ScheduledBatch]:
        """Batch the trace; ``service_time(n)`` is seconds for an n-request batch.

        ``block_ids`` (one row per arrival) feeds the lookahead consumer:
        each formed batch's rows are handed over before dispatch.
        """
        if self.lookahead is not None and block_ids is None:
            raise ValueError("a lookahead consumer is registered but "
                             "schedule() was not given block_ids")
        if block_ids is not None:
            block_ids = np.asarray(block_ids)
            if block_ids.shape[0] != len(arrivals):
                raise ValueError(
                    f"block_ids has {block_ids.shape[0]} rows for "
                    f"{len(arrivals)} arrivals")
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.ndim != 1:
            raise ValueError("need a 1-D array of arrival times")
        if arrivals.size == 0:
            # An empty trace (an idle pipeline stage's window) schedules
            # nothing: no batches, and the lookahead consumer is never
            # called — announcing zero ids is a no-op, not an error.
            return []
        if not np.isfinite(arrivals).all():
            raise ValueError("arrival times must be finite (no NaN/inf)")
        if np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival times must be sorted")
        max_batch = self.policy.max_batch_size
        max_wait = self.policy.max_wait_seconds

        batches: List[ScheduledBatch] = []
        full_launches = 0
        free_at = 0.0
        i, n = 0, int(arrivals.size)
        while i < n:
            oldest = float(arrivals[i])
            open_time = max(free_at, oldest)
            close_time = max(open_time, oldest + max_wait)
            j = i + 1
            while j < n and (j - i) < max_batch and arrivals[j] <= close_time:
                j += 1
            if (j - i) == max_batch:
                # Filled before the deadline: launch as soon as the last
                # admitted request is in (and the replica is free).
                start = max(open_time, float(arrivals[j - 1]))
                full_launches += 1
            else:
                # Timeout fired (or the trace ran dry inside the window).
                start = close_time
            service = service_time(j - i)
            if service <= 0:
                raise ValueError(
                    f"service_time must be positive, got {service}")
            batch = ScheduledBatch(first=i, last=j, start_seconds=start,
                                   service_seconds=service)
            if self.lookahead is not None:
                # Formed but not yet dispatched: the ORAM layer can plan
                # the whole batch's accesses before serving starts.
                self.lookahead(batch, block_ids[i:j])
            batches.append(batch)
            free_at = start + service
            i = j
        self._report(batches, full_launches)
        return batches

    def _report(self, batches: List[ScheduledBatch],
                full_launches: int) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("batcher.batches_total").inc(len(batches))
        registry.counter("batcher.full_launches_total").inc(full_launches)
        registry.counter("batcher.timeout_launches_total").inc(
            len(batches) - full_launches)
        registry.histogram("batcher.batch_size",
                           buckets=power_of_two_buckets()).observe_many(
            [batch.size for batch in batches])
        registry.histogram("batcher.service_seconds").observe_many(
            [batch.service_seconds for batch in batches])
