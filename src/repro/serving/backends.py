"""Execution backends: the one seam through which latencies are resolved.

Everything that asks "how long does embedding generation take under this
configuration?" — the serving engine, the offline profiler (Algorithm 2),
DLRM's inference accounting, and the figure benches — goes through the
:class:`ExecutionBackend` protocol. Three implementations answer:

* :class:`ModelledBackend` — the calibrated analytic platform model
  (:mod:`repro.costmodel.latency`), standing in for the paper's on-SGX
  measurements;
* :class:`MeasuredBackend` — wall-clock timing of this library's executable
  :class:`~repro.embedding.base.EmbeddingGenerator` objects, driven through
  their ``batched_forward`` seam;
* :class:`LazyMeasuredBackend` — the same timing with a
  :mod:`repro.lazy` graph-capture runtime active, so the oblivious hot
  paths replay cached fused graphs (``"measured-lazy"``).

Before this seam existed the per-table latency logic was re-implemented by
the server, the profiler, and the experiment scripts; now each of them asks
a backend.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.costmodel.latency import (
    DheShape,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    lookup_latency,
    oram_latency,
)
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.utils.timing import time_callable
from repro.utils.validation import check_positive

#: technique identifiers every backend understands
BACKEND_TECHNIQUES = ("lookup", "scan", "dhe-uniform", "dhe-varied",
                      "path-oram", "circuit-oram")


class ExecutionBackend:
    """Protocol for resolving embedding-generation latency.

    Implementations answer two kinds of question:

    * :meth:`technique_latency` — latency of an abstract (technique, table)
      pair under an execution configuration, used by the profiler and the
      allocation accounting;
    * :meth:`generator_latency` — latency of a *live*
      :class:`~repro.embedding.base.EmbeddingGenerator` object, used by the
      DLRM inference path.

    Any object with these two methods satisfies the protocol; subclassing
    is optional.
    """

    #: short identifier reported by profilers and engines
    name: str = "abstract"

    def technique_latency(self, technique: str, table_size: int, dim: int,
                          batch: int, threads: int = 1) -> float:
        """Seconds for one batch of lookups against one table."""
        raise NotImplementedError

    def generator_latency(self, generator, batch: int,
                          threads: int = 1) -> float:
        """Seconds for one batch through a live embedding generator."""
        raise NotImplementedError


class ModelledBackend(ExecutionBackend):
    """Analytic latency resolution via the calibrated platform model."""

    name = "modelled"

    def __init__(self, uniform_shape: Optional[DheShape] = None,
                 platform: PlatformModel = DEFAULT_PLATFORM) -> None:
        self.uniform_shape = uniform_shape
        self.platform = platform

    def _uniform(self) -> DheShape:
        if self.uniform_shape is None:
            raise ValueError("backend was built without a DHE uniform shape; "
                             "DHE techniques are unavailable")
        return self.uniform_shape

    def technique_latency(self, technique: str, table_size: int, dim: int,
                          batch: int, threads: int = 1) -> float:
        check_positive("table_size", table_size)
        if technique == "lookup":
            return lookup_latency(table_size, dim, batch, threads,
                                  self.platform)
        if technique == "scan":
            return linear_scan_latency(table_size, dim, batch, threads,
                                       self.platform)
        if technique == "dhe-uniform":
            return dhe_latency(self._uniform(), batch, threads, self.platform)
        if technique == "dhe-varied":
            shape = dhe_varied_shape(table_size, self._uniform())
            return dhe_latency(shape, batch, threads, self.platform)
        if technique == "path-oram":
            return oram_latency("path", table_size, dim, batch, threads,
                                self.platform)
        if technique == "circuit-oram":
            return oram_latency("circuit", table_size, dim, batch, threads,
                                self.platform)
        raise ValueError(f"unknown technique {technique!r}")

    def generator_latency(self, generator, batch: int,
                          threads: int = 1) -> float:
        return generator.modelled_latency(batch, threads, self.platform)


class MeasuredBackend(ExecutionBackend):
    """Wall-clock latency of the executable generators.

    Threads are ignored (this process is single-threaded); generators are
    cached per (technique, table size, dim) so repeated queries — a profiling
    sweep, a serving run — pay construction once.
    """

    name = "measured"

    def __init__(self, uniform_shape: Optional[DheShape] = None,
                 repeats: int = 3, weight_cache=None) -> None:
        check_positive("repeats", repeats)
        self.uniform_shape = uniform_shape
        self.repeats = repeats
        #: optional :class:`repro.cache.policy.DecoderWeightCache`; when
        #: set, generator objects (public model state) are shared through
        #: it across backend instances instead of the private dict.
        self.weight_cache = weight_cache
        self._generators: Dict[Tuple[str, int, int], object] = {}

    def _uniform(self) -> DheShape:
        if self.uniform_shape is None:
            raise ValueError("backend was built without a DHE uniform shape; "
                             "DHE techniques are unavailable")
        return self.uniform_shape

    def _build(self, technique: str, size: int, dim: int):
        from repro.embedding import (
            CircuitOramEmbedding,
            DHEEmbedding,
            LinearScanEmbedding,
            PathOramEmbedding,
            TableEmbedding,
        )

        if technique == "lookup":
            return TableEmbedding(size, dim, rng=0)
        if technique == "scan":
            return LinearScanEmbedding(size, dim, rng=0)
        if technique == "dhe-uniform":
            uniform = self._uniform()
            return DHEEmbedding(size, dim, shape=DheShape(
                uniform.k, uniform.fc_sizes, dim), rng=0)
        if technique == "dhe-varied":
            uniform = self._uniform()
            shape = dhe_varied_shape(size, DheShape(uniform.k,
                                                    uniform.fc_sizes, dim))
            return DHEEmbedding(size, dim, shape=shape, rng=0)
        if technique == "path-oram":
            return PathOramEmbedding(size, dim, rng=0)
        if technique == "circuit-oram":
            return CircuitOramEmbedding(size, dim, rng=0)
        raise ValueError(f"unknown technique {technique!r}")

    def _generator(self, technique: str, size: int, dim: int):
        key = (technique, size, dim)
        if self.weight_cache is not None:
            return self.weight_cache.generator(
                key, lambda: self._build(technique, size, dim))
        if key not in self._generators:
            self._generators[key] = self._build(technique, size, dim)
        return self._generators[key]

    def technique_latency(self, technique: str, table_size: int, dim: int,
                          batch: int, threads: int = 1) -> float:
        check_positive("table_size", table_size)
        generator = self._generator(technique, table_size, dim)
        return self.generator_latency(generator, batch, threads)

    def generator_latency(self, generator, batch: int,
                          threads: int = 1) -> float:
        check_positive("batch", batch)
        rng = np.random.default_rng(generator.num_embeddings)
        indices = rng.integers(0, generator.num_embeddings, size=batch)
        return time_callable(lambda: generator.batched_forward(indices),
                             repeats=self.repeats)


class LazyMeasuredBackend(MeasuredBackend):
    """Wall-clock latency with the lazy graph-capture runtime active.

    Identical to :class:`MeasuredBackend` except that every timed call runs
    under an ambient :class:`repro.lazy.NumpyRuntime`: the oblivious hot
    paths (DHE decode, vectorised scan) replay cached fused graphs instead
    of dispatching op by op. Generators are timed in eval mode (captures
    are inference-only) and each capture is warmed up outside the timed
    region, so the numbers reflect steady-state replay — the regime a
    serving loop lives in — not one-off capture cost.
    """

    name = "measured-lazy"

    def __init__(self, uniform_shape: Optional[DheShape] = None,
                 repeats: int = 3, runtime=None, weight_cache=None) -> None:
        super().__init__(uniform_shape, repeats, weight_cache=weight_cache)
        if runtime is None and weight_cache is not None:
            # Captured graphs are public; share one runtime (and so one
            # graph cache) across every backend built on this cache.
            runtime = weight_cache.shared_runtime()
        if runtime is None:
            from repro.lazy import NumpyRuntime

            runtime = NumpyRuntime()
        self.runtime = runtime

    def generator_latency(self, generator, batch: int,
                          threads: int = 1) -> float:
        from repro.lazy import use_runtime

        check_positive("batch", batch)
        was_training = getattr(generator, "training", False)
        generator.eval()
        rng = np.random.default_rng(generator.num_embeddings)
        indices = rng.integers(0, generator.num_embeddings, size=batch)
        try:
            with use_runtime(self.runtime):
                generator.batched_forward(indices)  # warm-up: capture + alloc
                return time_callable(
                    lambda: generator.batched_forward(indices),
                    repeats=self.repeats)
        finally:
            generator.train(was_training)


BackendLike = Union[str, ExecutionBackend]

#: every name :func:`resolve_backend` accepts, in resolution order — the
#: single registry the error message and the docs enumerate from
BACKEND_NAMES = ("modelled", "measured", "measured-lazy")


def resolve_backend(backend: BackendLike,
                    uniform_shape: Optional[DheShape] = None,
                    platform: PlatformModel = DEFAULT_PLATFORM
                    ) -> ExecutionBackend:
    """Turn a name from :data:`BACKEND_NAMES` or an instance into a backend.

    Any duck-typed object with ``technique_latency``/``generator_latency``
    passes through unchanged. An unknown name raises :class:`ValueError`
    listing every valid name.
    """
    if isinstance(backend, str):
        if backend == "modelled":
            return ModelledBackend(uniform_shape, platform)
        if backend == "measured":
            return MeasuredBackend(uniform_shape)
        if backend == "measured-lazy":
            return LazyMeasuredBackend(uniform_shape)
        raise ValueError(
            f"unknown backend {backend!r}; known: "
            + ", ".join(repr(name) for name in BACKEND_NAMES))
    if hasattr(backend, "technique_latency") and \
            hasattr(backend, "generator_latency"):
        return backend
    raise TypeError(f"not an execution backend: {backend!r}")
