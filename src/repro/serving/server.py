"""The secure-DLRM server: a thin facade over the execution engine.

Keeps the seed module's public surface (`SecureDlrmServer`, its
constructor, ``allocation``/``batch_latency``/``serve``/
``best_configuration``) while all latency accounting and scheduling lives
in :class:`~repro.serving.engine.ExecutionEngine` — the old hand-rolled
per-table scan/DHE loop is gone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro.costmodel.latency import DheShape
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.serving.backends import BackendLike
from repro.serving.batcher import BatchingPolicy
from repro.serving.engine import ExecutionEngine, ServingConfig
from repro.serving.report import ServingReport
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # runtime import deferred: hybrid imports serving
    from repro.cache.policy import CachePolicy, SecretIndependentCache
    from repro.hybrid.thresholds import ThresholdDatabase
    from repro.resilience.policy import ResiliencePolicy


class SecureDlrmServer:
    """Simulated single-replica server for a hybrid-protected DLRM."""

    def __init__(self, table_sizes: Sequence[int], embedding_dim: int,
                 uniform_shape: DheShape,
                 thresholds: ThresholdDatabase,
                 varied: bool = True,
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 backend: BackendLike = "modelled",
                 resilience: Optional[ResiliencePolicy] = None,
                 cache: Optional[Union["CachePolicy",
                                       "SecretIndependentCache"]] = None
                 ) -> None:
        if not table_sizes:
            raise ValueError("server needs at least one sparse feature")
        self.engine = ExecutionEngine(table_sizes, embedding_dim,
                                      uniform_shape, thresholds,
                                      varied=varied, backend=backend,
                                      platform=platform,
                                      resilience=resilience, cache=cache)
        self.table_sizes = self.engine.table_sizes
        self.embedding_dim = embedding_dim
        self.uniform_shape = uniform_shape
        self.thresholds = thresholds
        self.varied = varied
        self.platform = platform

    # ------------------------------------------------------------------
    def allocation(self, config: ServingConfig) -> Tuple[int, int]:
        """(scan features, DHE features) for a configuration."""
        return self.engine.allocation_counts(config)

    def batch_latency(self, config: ServingConfig) -> float:
        """End-to-end latency of one full batch, via the backend."""
        return self.engine.batch_latency(config)

    # ------------------------------------------------------------------
    def serve(self, num_requests: int, config: ServingConfig) -> ServingReport:
        """Simulate serving ``num_requests`` in back-to-back full batches
        (the paper's throughput setting; queueing-free by construction)."""
        with get_registry().span("server.serve", mode="closed",
                                 requests=num_requests):
            return self.engine.serve_closed(num_requests, config)

    def serve_poisson(self, num_requests: int, rate_rps: float,
                      config: ServingConfig,
                      policy: Optional[BatchingPolicy] = None,
                      rng: SeedLike = None) -> ServingReport:
        """Open-system serving: Poisson arrivals + the dynamic batcher."""
        with get_registry().span("server.serve", mode="poisson",
                                 requests=num_requests, rate_rps=rate_rps):
            return self.engine.serve_poisson(num_requests, rate_rps, config,
                                             policy=policy, rng=rng)

    def best_configuration(self, configs: Sequence[ServingConfig],
                           num_requests: int = 1024
                           ) -> Tuple[ServingConfig, ServingReport]:
        """Highest-throughput configuration that meets its own SLA."""
        return self.engine.best_configuration(configs, num_requests)
