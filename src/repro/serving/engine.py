"""The backend-agnostic execution engine behind every serving question.

One object owns the pipeline the paper's deployment story needs (§VI-B3,
Fig 13): resolve the live configuration's allocation (Algorithm 3), price a
batch through an :class:`~repro.serving.backends.ExecutionBackend`, run an
arrival trace through the :class:`~repro.serving.batcher.DynamicBatcher`,
and report per-request queueing + service latency. The closed-loop path
(:meth:`serve_closed`) reproduces the seed simulator's numbers bit-for-bit;
the open paths (:meth:`serve_poisson`, arbitrary traces) model the queueing
the seed assumed away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.costmodel.latency import MLP_OVERHEAD_SECONDS, DheShape
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.serving.backends import BackendLike, resolve_backend
from repro.serving.batcher import BatchingPolicy, DynamicBatcher
from repro.serving.dispatcher import Dispatcher
from repro.serving.report import ServingReport
from repro.serving.requests import RequestQueue, batch_boundary_arrivals
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive, check_positive_finite

if TYPE_CHECKING:  # runtime imports are deferred: hybrid imports serving
    from repro.cache.policy import CachePolicy, SecretIndependentCache
    from repro.hybrid.allocator import FeatureAllocation
    from repro.hybrid.thresholds import ThresholdDatabase
    from repro.resilience.policy import ResiliencePolicy


@dataclass(frozen=True)
class ServingConfig:
    """Execution configuration of one serving replica."""

    batch_size: int = 32
    threads: int = 1
    sla_seconds: float = 0.020  # the paper's 20 ms target

    def __post_init__(self) -> None:
        check_positive("batch_size", self.batch_size)
        check_positive("threads", self.threads)
        check_positive_finite("sla_seconds", self.sla_seconds)


ArrivalsLike = Union[RequestQueue, Sequence[float], np.ndarray]


class ExecutionEngine:
    """Backend-agnostic serving pipeline for a hybrid-protected DLRM."""

    def __init__(self, table_sizes: Sequence[int], embedding_dim: int,
                 uniform_shape: Optional[DheShape],
                 thresholds: ThresholdDatabase,
                 varied: bool = True,
                 backend: BackendLike = "modelled",
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 mlp_overhead_seconds: float = MLP_OVERHEAD_SECONDS,
                 resilience: Optional[ResiliencePolicy] = None,
                 cache: Optional[Union["CachePolicy",
                                       "SecretIndependentCache"]] = None
                 ) -> None:
        if not table_sizes:
            raise ValueError("engine needs at least one sparse feature")
        check_positive("embedding_dim", embedding_dim)
        self.table_sizes = tuple(table_sizes)
        self.embedding_dim = embedding_dim
        self.uniform_shape = uniform_shape
        self.thresholds = thresholds
        self.varied = varied
        self.platform = platform
        self.mlp_overhead_seconds = mlp_overhead_seconds
        self.backend = resolve_backend(backend, uniform_shape, platform)
        self.resilience = resilience
        self.cache = cache
        self._cache_instance: Optional[SecretIndependentCache] = None

    # ------------------------------------------------------------------
    # Allocation (Algorithm 3) for the live configuration
    # ------------------------------------------------------------------
    def allocations(self, config: ServingConfig) -> List[FeatureAllocation]:
        """Per-feature scan/DHE decision for a configuration."""
        from repro.hybrid.allocator import allocate_for_configuration

        return allocate_for_configuration(self.table_sizes, self.thresholds,
                                          self.embedding_dim,
                                          config.batch_size, config.threads)

    def allocation_counts(self, config: ServingConfig) -> Tuple[int, int]:
        """(scan features, DHE features) for a configuration."""
        from repro.hybrid.allocator import count_scan_features

        allocations = self.allocations(config)
        scans = count_scan_features(allocations)
        return scans, len(allocations) - scans

    # ------------------------------------------------------------------
    # Latency resolution — everything goes through the backend
    # ------------------------------------------------------------------
    def embedding_latency(self, config: ServingConfig) -> float:
        """Embedding-generation latency of one batch (features sequential)."""
        from repro.hybrid.allocator import allocation_latency

        return allocation_latency(self.allocations(config), self.backend,
                                  self.embedding_dim, config.batch_size,
                                  config.threads, varied=self.varied)

    def batch_latency(self, config: ServingConfig) -> float:
        """End-to-end latency of one batch (MLP overhead + embeddings)."""
        from repro.hybrid.allocator import allocation_latency

        return allocation_latency(self.allocations(config), self.backend,
                                  self.embedding_dim, config.batch_size,
                                  config.threads, varied=self.varied,
                                  overhead_seconds=self.mlp_overhead_seconds)

    # ------------------------------------------------------------------
    # The request pipeline: queue -> dynamic batcher -> report
    # ------------------------------------------------------------------
    def serve(self, config: ServingConfig, arrivals: ArrivalsLike,
              policy: Optional[BatchingPolicy] = None) -> ServingReport:
        """Run an arrival trace through the dynamic batcher.

        Partial batches execute at the configured batch shape (the replica
        pads), so every non-empty batch costs ``batch_latency(config)``.
        Per-request latency = queueing delay (batch start − arrival) +
        batch service time.

        Since the pipeline refactor this routes through a one-stage
        :class:`~repro.serving.pipeline.PipelineEngine`; the one-stage
        path returns the stage's report verbatim, so the output is
        bit-for-bit what the pre-pipeline engine produced (regression-
        pinned in ``tests/serving/test_pipeline.py``).
        """
        from repro.serving.pipeline import EngineStage, PipelineEngine

        stage = EngineStage(self, config, policy=policy)
        return PipelineEngine([stage]).serve(arrivals).end_to_end

    def _serve_queue(self, config: ServingConfig, queue: RequestQueue,
                     policy: Optional[BatchingPolicy]) -> ServingReport:
        """One stage's worth of serving: the pre-pipeline ``serve`` body."""
        if policy is None:
            policy = BatchingPolicy(max_batch_size=config.batch_size,
                                    max_wait_seconds=0.0)
        if self.cache is not None:
            return self._serve_cached(config, queue, policy)
        registry = get_registry()
        with registry.span("serve", requests=len(queue),
                           batch_size=config.batch_size,
                           threads=config.threads):
            with registry.span("serve.price_batch"):
                service = self.batch_latency(config)
            with registry.span("serve.schedule"):
                batches = DynamicBatcher(policy).schedule(
                    queue.arrivals, lambda size: service)
            if self.resilience is not None:
                stats = self._execute_resilient(batches, queue.arrivals,
                                                service, registry)
                queue_delays = stats.pop("queue_delays")
                service_latencies = stats.pop("service_latencies")
            else:
                stats = None
                queue_delays = np.empty(len(queue), dtype=np.float64)
                service_latencies = np.empty(len(queue), dtype=np.float64)
                for batch in batches:
                    window = slice(batch.first, batch.last)
                    queue_delays[window] = (batch.start_seconds
                                            - queue.arrivals[window])
                    service_latencies[window] = batch.service_seconds
            with registry.span("serve.allocate"):
                scans, dhes = self.allocation_counts(config)
            busy_time = math.fsum(batch.service_seconds for batch in batches)
        report = ServingReport.from_components(
            queue_delays=queue_delays, service_latencies=service_latencies,
            num_batches=len(batches), scan_features=scans,
            dhe_features=dhes, batch_time_total=busy_time)
        if stats is not None:
            from repro.resilience.report import ResilientServingReport

            report = ResilientServingReport.from_serving_report(
                report, **stats["stats"])
        self._report_serve(registry, report)
        return report

    # ------------------------------------------------------------------
    # The opt-in oblivious-safe cached path (repro.cache)
    # ------------------------------------------------------------------
    @property
    def cache_instance(self) -> Optional[SecretIndependentCache]:
        """The live cache (resolved from a :class:`CachePolicy` on first use).

        A pre-built cache instance is shared verbatim — that is how one
        :class:`~repro.cache.policy.DecoderWeightCache` persists decoder
        weights across per-epoch engines.
        """
        if self.cache is None:
            return None
        if self._cache_instance is None:
            from repro.cache.policy import resolve_cache

            self._cache_instance = resolve_cache(self.cache)
        return self._cache_instance

    def _cache_pricer(self, config: ServingConfig):
        from repro.cache.policy import CachePricer

        return CachePricer(backend=self.backend,
                           embedding_dim=self.embedding_dim,
                           batch_size=config.batch_size,
                           threads=config.threads, varied=self.varied,
                           overhead_seconds=self.mlp_overhead_seconds,
                           uniform_shape=self.uniform_shape,
                           platform=self.platform)

    def _serve_cached(self, config: ServingConfig, queue: RequestQueue,
                      policy: BatchingPolicy) -> ServingReport:
        """The cached pipeline: plan admission, schedule, execute lookups.

        Scheduling always reserves the cache's (constant) declared service
        slot, so queueing is never understated by an optimistic hit
        forecast; per-batch *executed* time is where hits pay off. The
        uncached :meth:`serve` path is untouched — byte-identical to the
        pre-cache engine.

        When a :class:`~repro.resilience.policy.ResiliencePolicy` is also
        set, the cache's per-batch executed times become the fault-free
        baseline the resilient executor stacks retries/crashes/hedges on
        (``batch_service_seconds``). Cache counters reflect the admission
        plan and the scheduled batch stream — a retried batch replays its
        already-resolved executed time rather than re-consulting the
        cache, so counters stay a function of the public schedule alone.
        """
        from repro.cache.policy import BatchMetadata

        cache = self.cache_instance
        registry = get_registry()
        with registry.span("serve", requests=len(queue),
                           batch_size=config.batch_size,
                           threads=config.threads, cache=cache.name):
            allocations = self.allocations(config)
            before = cache.stats.snapshot()
            with registry.span("serve.price_batch"):
                cache.plan(allocations, config, self._cache_pricer(config))
                service = cache.schedule_seconds()
            with registry.span("serve.schedule"):
                batches = DynamicBatcher(policy).schedule(
                    queue.arrivals, lambda size: service)
            setup = cache.serve_setup_seconds()
            executed_times: List[float] = []
            epoch_len = cache.epoch_seconds
            per_epoch_counts: dict = {}
            for position, batch in enumerate(batches):
                epoch = (int(batch.start_seconds // epoch_len)
                         if math.isfinite(epoch_len) else 0)
                index_in_epoch = per_epoch_counts.get(epoch, 0)
                per_epoch_counts[epoch] = index_in_epoch + 1
                meta = BatchMetadata(epoch=epoch,
                                     index_in_epoch=index_in_epoch,
                                     size=config.batch_size)
                executed = cache.batch_seconds(meta)
                if position == 0:
                    executed += setup
                executed_times.append(executed)
            if self.resilience is not None:
                stats = self._execute_resilient(
                    batches, queue.arrivals, service, registry,
                    batch_service_seconds=executed_times)
                queue_delays = stats.pop("queue_delays")
                service_latencies = stats.pop("service_latencies")
            else:
                stats = None
                queue_delays = np.empty(len(queue), dtype=np.float64)
                service_latencies = np.empty(len(queue), dtype=np.float64)
                for batch, executed in zip(batches, executed_times):
                    window = slice(batch.first, batch.last)
                    queue_delays[window] = (batch.start_seconds
                                            - queue.arrivals[window])
                    service_latencies[window] = executed
            with registry.span("serve.allocate"):
                scans, dhes = self.allocation_counts(config)
            busy_time = math.fsum(executed_times)
        after = cache.stats
        report = ServingReport.from_components(
            queue_delays=queue_delays, service_latencies=service_latencies,
            num_batches=len(batches), scan_features=scans,
            dhe_features=dhes, batch_time_total=busy_time,
            cache_hits=after.hits - before.hits,
            cache_misses=after.misses - before.misses,
            cache_bytes_resident=after.bytes_resident)
        if stats is not None:
            from repro.resilience.report import ResilientServingReport

            report = ResilientServingReport.from_serving_report(
                report, **stats["stats"])
        self._report_serve(registry, report)
        return report

    def _execute_resilient(self, batches, arrivals, service, registry,
                           batch_service_seconds=None):
        """Run the schedule through the fault-aware executor (lazy import)."""
        from repro.resilience.policy import execute_with_resilience

        with registry.span("serve.resilient_execute",
                           batches=len(batches)):
            result = execute_with_resilience(
                batches, arrivals, service, self.resilience,
                batch_service_seconds=batch_service_seconds)
        return {"queue_delays": result["queue_delays"],
                "service_latencies": result["service_latencies"],
                "stats": result["stats"]}

    def _report_serve(self, registry, report: ServingReport) -> None:
        """Fold one serving run into the engine's metrics."""
        if not registry.enabled:
            return
        registry.counter("serving.requests_total").inc(report.num_requests)
        registry.counter("serving.batches_total").inc(report.num_batches)
        registry.histogram("serving.queue_delay_seconds").observe_many(
            report.queue_delays)
        registry.histogram("serving.request_latency_seconds").observe_many(
            report.latencies)
        registry.gauge("serving.scan_features").set(report.scan_features)
        registry.gauge("serving.dhe_features").set(report.dhe_features)
        if report.tracks_cache:
            registry.gauge("serving.cache_hit_rate").set(
                report.cache_hit_rate)

    def serve_closed(self, num_requests: int,
                     config: ServingConfig) -> ServingReport:
        """The seed simulator's setting: back-to-back full batches.

        Deterministic batch-boundary arrivals + the zero-wait policy make
        queueing delay identically zero, so per-request latency equals the
        batch service time — bit-for-bit the seed ``serve()`` output.
        """
        check_positive("num_requests", num_requests)
        per_batch = self.batch_latency(config)
        arrivals = batch_boundary_arrivals(num_requests, config.batch_size,
                                           per_batch)
        return self.serve(config, arrivals,
                          BatchingPolicy(max_batch_size=config.batch_size,
                                         max_wait_seconds=0.0))

    def serve_poisson(self, num_requests: int, rate_rps: float,
                      config: ServingConfig,
                      policy: Optional[BatchingPolicy] = None,
                      rng: SeedLike = None) -> ServingReport:
        """Open-system serving: Poisson arrivals through the batcher."""
        queue = RequestQueue.poisson(num_requests, rate_rps, rng)
        return self.serve(config, queue, policy)

    # ------------------------------------------------------------------
    # Configuration search and multi-replica dispatch
    # ------------------------------------------------------------------
    def best_configuration(self, configs: Sequence[ServingConfig],
                           num_requests: int = 1024
                           ) -> Tuple[ServingConfig, ServingReport]:
        """Highest-throughput configuration that meets its own SLA.

        Candidates are evaluated closed-loop; among SLA-meeting candidates
        the tie-break is throughput (strictly greater wins, so the earliest
        of equal-throughput candidates is kept).
        """
        if not configs:
            raise ValueError("need at least one candidate configuration")
        best: Optional[Tuple[ServingConfig, ServingReport]] = None
        for config in configs:
            report = self.serve_closed(num_requests, config)
            if report.sla_attainment(config.sla_seconds) < 1.0:
                continue
            if best is None or report.throughput() > best[1].throughput():
                best = (config, report)
        if best is None:
            raise RuntimeError("no candidate configuration meets its SLA")
        return best

    def dispatcher(self, config: ServingConfig,
                   allocations: Optional[Sequence[FeatureAllocation]] = None
                   ) -> Dispatcher:
        """Multi-replica dispatcher for this model under ``config``.

        Folds the per-feature demands into one tenant description
        (:func:`repro.hybrid.colocation_planner.dlrm_tenant`) and prices
        replica interference through :mod:`repro.costmodel.colocation`.
        """
        from repro.hybrid.colocation_planner import dlrm_tenant

        if self.uniform_shape is None:
            raise ValueError("dispatcher needs the DHE uniform shape")
        if allocations is None:
            allocations = self.allocations(config)
        tenant = dlrm_tenant(self.table_sizes, self.embedding_dim,
                             allocations, self.uniform_shape,
                             config.batch_size, varied=self.varied,
                             platform=self.platform)
        return Dispatcher(tenant.demand, config.batch_size,
                          platform=self.platform)
