"""Per-request serving statistics: queueing delay + service latency.

The seed report carried one latency array and a pseudo-private batch-time
field mutated after construction; this report is built from its components
— per-request queueing delay and service latency — so percentiles and SLA
attainment reflect queueing for the first time, and ``batch_time_total`` is
a proper constructor argument (``throughput()`` can no longer silently
return 0.0 on a hand-built report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class ServingReport:
    """Latency statistics of one simulated serving run."""

    num_requests: int
    num_batches: int
    latencies: np.ndarray            # per-request seconds (queueing + service)
    scan_features: int
    dhe_features: int
    batch_time_total: float          # replica busy time (sum of batch service)
    queue_delays: Optional[np.ndarray] = None      # per-request seconds
    service_latencies: Optional[np.ndarray] = None  # per-request seconds
    # Cache accounting (None on uncached runs — distinct from a cached run
    # that happened to see zero lookups):
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    cache_bytes_resident: Optional[int] = None

    @classmethod
    def from_components(cls, queue_delays: np.ndarray,
                        service_latencies: np.ndarray, num_batches: int,
                        scan_features: int, dhe_features: int,
                        batch_time_total: float,
                        cache_hits: Optional[int] = None,
                        cache_misses: Optional[int] = None,
                        cache_bytes_resident: Optional[int] = None
                        ) -> "ServingReport":
        """Build a report from per-request queueing + service arrays."""
        queue_delays = np.asarray(queue_delays, dtype=np.float64)
        service_latencies = np.asarray(service_latencies, dtype=np.float64)
        if queue_delays.shape != service_latencies.shape:
            raise ValueError(
                f"queue/service shapes differ: {queue_delays.shape} vs "
                f"{service_latencies.shape}")
        return cls(num_requests=int(queue_delays.size),
                   num_batches=num_batches,
                   latencies=queue_delays + service_latencies,
                   scan_features=scan_features, dhe_features=dhe_features,
                   batch_time_total=batch_time_total,
                   queue_delays=queue_delays,
                   service_latencies=service_latencies,
                   cache_hits=cache_hits, cache_misses=cache_misses,
                   cache_bytes_resident=cache_bytes_resident)

    @classmethod
    def merge(cls, reports: Sequence["ServingReport"]) -> "ServingReport":
        """Merge reports from engines serving *disjoint request populations*.

        Every per-request array is concatenated exactly once: merged
        ``latencies`` come straight from the constituents, never recomputed
        as ``queue_delays + latencies`` (each latency already contains its
        queue wait, so re-adding it would double-count queueing). The
        queue/service decomposition is kept only when *every* constituent
        carries it — substituting zeros for a missing decomposition would
        silently understate queueing in the merged percentiles.

        Counters add: requests, batches, scan/DHE features (shards of one
        model partition the feature set, so the sums recover the model's
        totals) and busy time (``throughput()`` of the merged report is the
        fleet-aggregate rate, requests over summed busy time).

        Cache counters add too — hit *counts* sum and the merged hit rate
        is recomputed from the summed counters (:attr:`cache_hit_rate`),
        never an average of per-report rates, which would weight a
        two-lookup shard the same as a two-million-lookup one. A report
        without cache fields (an uncached constituent) contributes zero to
        the sums; the merged report keeps cache fields if *any*
        constituent carried them, and stays uncached (``None``) only when
        none did.

        Heterogeneous constituents are first-class: if any report is a
        :class:`~repro.resilience.report.ResilientServingReport`, the
        merged report is lifted to that shape with the fault counters
        summed and degradation events concatenated — a pipeline fleet
        view mixing resilient and plain stages never silently zeroes
        attempts/retries/sheds. (Per-replica ``fleet_snapshot``\\ s do not
        aggregate and are dropped; drill into the constituents for those.)
        """
        reports = list(reports)
        if not reports:
            raise ValueError("merge needs at least one report")
        latencies = np.concatenate([r.latencies for r in reports])
        queue_delays: Optional[np.ndarray] = None
        service_latencies: Optional[np.ndarray] = None
        if all(r.queue_delays is not None for r in reports):
            queue_delays = np.concatenate([r.queue_delays for r in reports])
        if all(r.service_latencies is not None for r in reports):
            service_latencies = np.concatenate([r.service_latencies
                                                for r in reports])
        cache_hits: Optional[int] = None
        cache_misses: Optional[int] = None
        cache_bytes_resident: Optional[int] = None
        if any(r.tracks_cache for r in reports):
            cache_hits = sum(r.cache_hits or 0 for r in reports)
            cache_misses = sum(r.cache_misses or 0 for r in reports)
            cache_bytes_resident = sum(r.cache_bytes_resident or 0
                                       for r in reports)
        merged = cls(
            num_requests=sum(r.num_requests for r in reports),
            num_batches=sum(r.num_batches for r in reports),
            latencies=latencies,
            scan_features=sum(r.scan_features for r in reports),
            dhe_features=sum(r.dhe_features for r in reports),
            batch_time_total=math.fsum(r.batch_time_total for r in reports),
            queue_delays=queue_delays,
            service_latencies=service_latencies,
            cache_hits=cache_hits, cache_misses=cache_misses,
            cache_bytes_resident=cache_bytes_resident)
        resilient = [r for r in reports if hasattr(r, "attempts_total")]
        if resilient:
            # Deferred import: resilience builds on serving, not the
            # reverse (same idiom as the engine's fault path).
            from repro.resilience.report import ResilientServingReport

            merged = ResilientServingReport.from_serving_report(
                merged,
                attempts_total=sum(r.attempts_total for r in resilient),
                retries_total=sum(r.retries_total for r in resilient),
                hedges_total=sum(r.hedges_total for r in resilient),
                shed_requests=sum(r.shed_requests for r in resilient),
                crash_events=sum(r.crash_events for r in resilient),
                transient_faults=sum(r.transient_faults for r in resilient),
                spike_events=sum(r.spike_events for r in resilient),
                degradation_events=[event for r in resilient
                                    for event in r.degradation_events])
        return merged

    # ------------------------------------------------------------------
    # Percentiles and ratios are NaN-free: a report with no requests (an
    # all-shed or empty window) answers 0.0 instead of propagating the
    # NaN np.percentile/mean would produce on an empty array.
    @property
    def p50(self) -> float:
        if self.latencies.size == 0:
            return 0.0
        return float(np.percentile(self.latencies, 50))

    @property
    def p95(self) -> float:
        if self.latencies.size == 0:
            return 0.0
        return float(np.percentile(self.latencies, 95))

    @property
    def p99(self) -> float:
        if self.latencies.size == 0:
            return 0.0
        return float(np.percentile(self.latencies, 99))

    @property
    def mean_queue_delay(self) -> float:
        """Mean per-request queueing delay (0.0 when not tracked)."""
        if self.queue_delays is None or self.queue_delays.size == 0:
            return 0.0
        return float(self.queue_delays.mean())

    @property
    def p95_queue_delay(self) -> float:
        if self.queue_delays is None or self.queue_delays.size == 0:
            return 0.0
        return float(np.percentile(self.queue_delays, 95))

    @property
    def tracks_cache(self) -> bool:
        """Whether this report carries cache accounting at all."""
        return (self.cache_hits is not None
                or self.cache_misses is not None
                or self.cache_bytes_resident is not None)

    @property
    def cache_hit_rate(self) -> float:
        """Hits over lookups, recomputed from the counters.

        0.0 both for uncached reports and for cached runs with no lookups;
        check :attr:`tracks_cache` to tell the two apart.
        """
        hits = self.cache_hits or 0
        lookups = hits + (self.cache_misses or 0)
        if lookups == 0:
            return 0.0
        return hits / lookups

    def sla_attainment(self, sla_seconds: float) -> float:
        check_positive("sla_seconds", sla_seconds)
        if self.latencies.size == 0:
            return 0.0
        return float((self.latencies <= sla_seconds).mean())

    def throughput(self) -> float:
        """Requests/second at full utilisation (replica busy time)."""
        if self.batch_time_total <= 0:
            return 0.0
        return self.num_requests / self.batch_time_total
