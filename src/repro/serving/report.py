"""Per-request serving statistics: queueing delay + service latency.

The seed report carried one latency array and a pseudo-private batch-time
field mutated after construction; this report is built from its components
— per-request queueing delay and service latency — so percentiles and SLA
attainment reflect queueing for the first time, and ``batch_time_total`` is
a proper constructor argument (``throughput()`` can no longer silently
return 0.0 on a hand-built report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class ServingReport:
    """Latency statistics of one simulated serving run."""

    num_requests: int
    num_batches: int
    latencies: np.ndarray            # per-request seconds (queueing + service)
    scan_features: int
    dhe_features: int
    batch_time_total: float          # replica busy time (sum of batch service)
    queue_delays: Optional[np.ndarray] = None      # per-request seconds
    service_latencies: Optional[np.ndarray] = None  # per-request seconds

    @classmethod
    def from_components(cls, queue_delays: np.ndarray,
                        service_latencies: np.ndarray, num_batches: int,
                        scan_features: int, dhe_features: int,
                        batch_time_total: float) -> "ServingReport":
        """Build a report from per-request queueing + service arrays."""
        queue_delays = np.asarray(queue_delays, dtype=np.float64)
        service_latencies = np.asarray(service_latencies, dtype=np.float64)
        if queue_delays.shape != service_latencies.shape:
            raise ValueError(
                f"queue/service shapes differ: {queue_delays.shape} vs "
                f"{service_latencies.shape}")
        return cls(num_requests=int(queue_delays.size),
                   num_batches=num_batches,
                   latencies=queue_delays + service_latencies,
                   scan_features=scan_features, dhe_features=dhe_features,
                   batch_time_total=batch_time_total,
                   queue_delays=queue_delays,
                   service_latencies=service_latencies)

    # ------------------------------------------------------------------
    @property
    def p50(self) -> float:
        return float(np.percentile(self.latencies, 50))

    @property
    def p95(self) -> float:
        return float(np.percentile(self.latencies, 95))

    @property
    def p99(self) -> float:
        return float(np.percentile(self.latencies, 99))

    @property
    def mean_queue_delay(self) -> float:
        """Mean per-request queueing delay (0.0 when not tracked)."""
        if self.queue_delays is None:
            return 0.0
        return float(self.queue_delays.mean())

    @property
    def p95_queue_delay(self) -> float:
        if self.queue_delays is None:
            return 0.0
        return float(np.percentile(self.queue_delays, 95))

    def sla_attainment(self, sla_seconds: float) -> float:
        check_positive("sla_seconds", sla_seconds)
        return float((self.latencies <= sla_seconds).mean())

    def throughput(self) -> float:
        """Requests/second at full utilisation (replica busy time)."""
        if self.batch_time_total <= 0:
            return 0.0
        return self.num_requests / self.batch_time_total
