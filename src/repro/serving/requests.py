"""Request arrival processes for the serving simulation.

The seed simulator assumed requests arrive exactly at batch boundaries; a
real front-end sees an arrival *process*. This module provides the traces
the engine consumes: deterministic (fixed inter-arrival), Poisson (the open
system of Fig 13's throughput story), and the closed-loop batch-boundary
trace that reproduces the seed behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Request:
    """One request: its position in the trace and its arrival time."""

    index: int
    arrival_seconds: float


def deterministic_arrivals(num_requests: int, interval_seconds: float,
                           start_seconds: float = 0.0) -> np.ndarray:
    """Fixed inter-arrival trace: request ``k`` arrives at ``start + k*dt``."""
    check_positive("num_requests", num_requests)
    check_non_negative("interval_seconds", interval_seconds)
    check_non_negative("start_seconds", start_seconds)
    return start_seconds + interval_seconds * np.arange(num_requests,
                                                        dtype=np.float64)


def poisson_arrivals(num_requests: int, rate_rps: float,
                     rng: SeedLike = None) -> np.ndarray:
    """Poisson process: exponential inter-arrivals at ``rate_rps`` req/s."""
    check_positive("num_requests", num_requests)
    check_positive("rate_rps", rate_rps)
    generator = new_rng(rng)
    gaps = generator.exponential(1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def batch_boundary_arrivals(num_requests: int, batch_size: int,
                            batch_latency_seconds: float) -> np.ndarray:
    """The seed simulator's closed-loop trace: each batch's requests arrive
    exactly when the server frees up, so queueing delay is identically zero.

    The accumulation (repeated addition of the batch latency) deliberately
    mirrors the engine's own clock so per-request latency reproduces the
    batch service time bit-for-bit.
    """
    check_positive("num_requests", num_requests)
    check_positive("batch_size", batch_size)
    check_positive("batch_latency_seconds", batch_latency_seconds)
    arrivals = np.empty(num_requests, dtype=np.float64)
    clock = 0.0
    for first in range(0, num_requests, batch_size):
        arrivals[first:first + batch_size] = clock
        clock = clock + batch_latency_seconds
    return arrivals


class RequestQueue:
    """An ordered trace of request arrival times (seconds)."""

    def __init__(self, arrivals) -> None:
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise ValueError("need a non-empty 1-D array of arrival times")
        if not np.isfinite(arrivals).all():
            raise ValueError("arrival times must be finite (no NaN/inf)")
        if arrivals.min() < 0:
            raise ValueError("arrival times must be non-negative")
        if np.any(np.diff(arrivals) < 0):
            arrivals = np.sort(arrivals)
        self.arrivals = arrivals

    # ------------------------------------------------------------------
    @classmethod
    def deterministic(cls, num_requests: int, interval_seconds: float,
                      start_seconds: float = 0.0) -> "RequestQueue":
        return cls(deterministic_arrivals(num_requests, interval_seconds,
                                          start_seconds))

    @classmethod
    def poisson(cls, num_requests: int, rate_rps: float,
                rng: SeedLike = None) -> "RequestQueue":
        return cls(poisson_arrivals(num_requests, rate_rps, rng))

    @classmethod
    def batch_boundary(cls, num_requests: int, batch_size: int,
                       batch_latency_seconds: float) -> "RequestQueue":
        return cls(batch_boundary_arrivals(num_requests, batch_size,
                                           batch_latency_seconds))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.arrivals.size)

    def __iter__(self) -> Iterator[Request]:
        for index, arrival in enumerate(self.arrivals):
            yield Request(index=index, arrival_seconds=float(arrival))

    def offered_load_rps(self) -> Optional[float]:
        """Mean arrival rate over the trace span (None for a single burst)."""
        span = float(self.arrivals[-1] - self.arrivals[0])
        if span <= 0:
            return None
        return (len(self) - 1) / span

    def __repr__(self) -> str:
        return (f"RequestQueue(n={len(self)}, "
                f"span={float(self.arrivals[-1] - self.arrivals[0]):.6f}s)")
