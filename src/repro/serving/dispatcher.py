"""Multi-replica dispatch under co-location interference (Fig 13).

A :class:`Dispatcher` places homogeneous replicas of one model on a host
and accounts their contention through the shared-resource model in
:mod:`repro.costmodel.colocation` — the same interference math Figs 8/9/13
use, not a private copy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.costmodel.colocation import TenantDemand, replicated_latencies
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive, check_positive_finite


class Dispatcher:
    """Evaluates a replica fleet built from one tenant demand description."""

    def __init__(self, demand: TenantDemand, batch_size: int,
                 platform: PlatformModel = DEFAULT_PLATFORM) -> None:
        check_positive("batch_size", batch_size)
        self.demand = demand
        self.batch_size = batch_size
        self.platform = platform

    # ------------------------------------------------------------------
    def replica_latencies(self, replicas: int) -> List[float]:
        """Per-replica batch latency with ``replicas`` co-located copies.

        Pure compute — ``sweep`` reports telemetry once per sweep rather
        than per evaluation, keeping this inner loop cheap.
        """
        return replicated_latencies(self.demand, replicas, self.platform)

    def batch_latency(self, replicas: int = 1) -> float:
        """Worst-replica batch latency (what an SLA sees)."""
        return max(self.replica_latencies(replicas))

    def throughput(self, replicas: int) -> float:
        """Aggregate inferences/second across the fleet."""
        return sum(self.batch_size / latency
                   for latency in self.replica_latencies(replicas))

    # ------------------------------------------------------------------
    def sweep(self, max_replicas: int) -> List[Tuple[int, float, float]]:
        """(copies, worst latency, aggregate throughput) as replicas grow."""
        check_positive("max_replicas", max_replicas)
        registry = get_registry()
        with registry.span("dispatcher.sweep", max_replicas=max_replicas):
            results = []
            worst: List[float] = []
            for copies in range(1, max_replicas + 1):
                latencies = self.replica_latencies(copies)
                results.append((copies, max(latencies),
                                sum(self.batch_size / lat
                                    for lat in latencies)))
                worst.append(results[-1][1])
        if registry.enabled:
            registry.counter("dispatcher.evaluations_total").inc(max_replicas)
            registry.histogram(
                "dispatcher.replica_latency_seconds").observe_many(worst)
        return results

    def min_replicas(self, rate_rps: float, sla_seconds: float,
                     max_replicas: int,
                     min_replicas: int = 1) -> Optional[int]:
        """Smallest fleet that sustains ``rate_rps`` within the SLA.

        Replica selection for an offered load: walk the fleet sizes upward
        and return the first whose aggregate throughput covers the rate
        while the worst replica still meets the latency SLA. Returns None
        when no fleet up to ``max_replicas`` qualifies (co-location
        interference can make throughput non-monotonic, so infeasibility at
        ``max_replicas`` does not imply a larger fleet would fail too —
        but within the searched range nothing works).

        ``min_replicas`` is a redundancy floor: fleets smaller than it are
        never selected even when they would meet the load. A floor above
        ``max_replicas`` is a configuration contradiction and raises.
        """
        check_positive_finite("rate_rps", rate_rps)
        check_positive_finite("sla_seconds", sla_seconds)
        check_positive("max_replicas", max_replicas)
        check_positive("min_replicas", min_replicas)
        if min_replicas > max_replicas:
            raise ValueError(
                f"min_replicas {min_replicas} exceeds max_replicas "
                f"{max_replicas}; the selection window is empty")
        for copies, latency, throughput in self.sweep(max_replicas):
            if copies < min_replicas:
                continue
            if latency <= sla_seconds and throughput >= rate_rps:
                get_registry().gauge("dispatcher.selected_replicas").set(
                    copies)
                return copies
        return None

    def sla_bounded_throughput(self, sla_seconds: float,
                               max_replicas: int) -> float:
        """Best throughput among replica counts meeting the SLA."""
        check_positive_finite("sla_seconds", sla_seconds)
        feasible = [throughput for _, latency, throughput
                    in self.sweep(max_replicas) if latency <= sla_seconds]
        return max(feasible) if feasible else 0.0
