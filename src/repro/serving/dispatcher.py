"""Multi-replica dispatch under co-location interference (Fig 13).

A :class:`Dispatcher` places homogeneous replicas of one model on a host
and accounts their contention through the shared-resource model in
:mod:`repro.costmodel.colocation` — the same interference math Figs 8/9/13
use, not a private copy.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.costmodel.colocation import TenantDemand, replicated_latencies
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.utils.validation import check_positive


class Dispatcher:
    """Evaluates a replica fleet built from one tenant demand description."""

    def __init__(self, demand: TenantDemand, batch_size: int,
                 platform: PlatformModel = DEFAULT_PLATFORM) -> None:
        check_positive("batch_size", batch_size)
        self.demand = demand
        self.batch_size = batch_size
        self.platform = platform

    # ------------------------------------------------------------------
    def replica_latencies(self, replicas: int) -> List[float]:
        """Per-replica batch latency with ``replicas`` co-located copies."""
        return replicated_latencies(self.demand, replicas, self.platform)

    def batch_latency(self, replicas: int = 1) -> float:
        """Worst-replica batch latency (what an SLA sees)."""
        return max(self.replica_latencies(replicas))

    def throughput(self, replicas: int) -> float:
        """Aggregate inferences/second across the fleet."""
        return sum(self.batch_size / latency
                   for latency in self.replica_latencies(replicas))

    # ------------------------------------------------------------------
    def sweep(self, max_replicas: int) -> List[Tuple[int, float, float]]:
        """(copies, worst latency, aggregate throughput) as replicas grow."""
        check_positive("max_replicas", max_replicas)
        results = []
        for copies in range(1, max_replicas + 1):
            latencies = self.replica_latencies(copies)
            results.append((copies, max(latencies),
                            sum(self.batch_size / lat for lat in latencies)))
        return results

    def sla_bounded_throughput(self, sla_seconds: float,
                               max_replicas: int) -> float:
        """Best throughput among replica counts meeting the SLA."""
        check_positive("sla_seconds", sla_seconds)
        feasible = [throughput for _, latency, throughput
                    in self.sweep(max_replicas) if latency <= sla_seconds]
        return max(feasible) if feasible else 0.0
