"""Serving: the backend-agnostic execution engine and request pipeline.

The package unifies what used to live in three places (the serving loop,
the profiler's backend switch, the experiment scripts' direct cost-model
calls) behind one :class:`~repro.serving.backends.ExecutionBackend`
protocol, and models real request dynamics: arrival processes, dynamic
batching with a max-wait timeout, multi-replica dispatch under co-location
interference, and per-request queueing + service accounting.
"""

from repro.serving.backends import (
    BACKEND_NAMES,
    BACKEND_TECHNIQUES,
    ExecutionBackend,
    LazyMeasuredBackend,
    MeasuredBackend,
    ModelledBackend,
    resolve_backend,
)
from repro.serving.requests import (
    Request,
    RequestQueue,
    batch_boundary_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
)
from repro.serving.batcher import BatchingPolicy, DynamicBatcher, ScheduledBatch
from repro.serving.report import ServingReport
from repro.serving.dispatcher import Dispatcher
from repro.serving.engine import ExecutionEngine, ServingConfig
from repro.serving.pipeline import (
    EngineStage,
    PipelineEngine,
    PipelineReport,
    PipelineStage,
    PricedStage,
    StageResult,
    compose_stage_reports,
)
from repro.serving.server import SecureDlrmServer

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_TECHNIQUES",
    "ExecutionBackend",
    "LazyMeasuredBackend",
    "MeasuredBackend",
    "ModelledBackend",
    "resolve_backend",
    "Request",
    "RequestQueue",
    "batch_boundary_arrivals",
    "deterministic_arrivals",
    "poisson_arrivals",
    "BatchingPolicy",
    "DynamicBatcher",
    "ScheduledBatch",
    "ServingReport",
    "Dispatcher",
    "ExecutionEngine",
    "ServingConfig",
    "EngineStage",
    "PipelineEngine",
    "PipelineReport",
    "PipelineStage",
    "PricedStage",
    "StageResult",
    "compose_stage_reports",
    "SecureDlrmServer",
]
