"""Multi-stage serving: a `Stage` protocol and the `PipelineEngine`.

The serving stack grew up single-stage: one :class:`ExecutionEngine`, one
batcher, one report. LLM serving is not one stage — tokenize, prefill, and
decode have different cost shapes (throughput-bound vs latency-bound) and,
at cluster scale, different autoscaled pools. This module lifts the
single-stage engine into the general shape:

* :class:`PipelineStage` — anything that turns an arrival trace into a
  :class:`StageResult` (a per-stage :class:`ServingReport` plus the
  departure times that become the next stage's arrivals);
* :class:`EngineStage` — adapts an :class:`ExecutionEngine` + config, so
  the existing engine is literally the one-stage special case;
* :class:`PricedStage` — a stage priced by an arbitrary per-batch service
  function (the LLM stages in :mod:`repro.llm.stages` are these);
* :class:`PipelineEngine` — chains stages (stage *k*'s departures are
  stage *k+1*'s arrivals) and composes the per-stage reports into a
  :class:`PipelineReport`.

Accounting invariant: the wait between stage *k* finishing a request and
stage *k+1* starting it is measured **once**, as stage *k+1*'s queueing
delay (downstream batch start − upstream departure). Summing per-stage
``queue_delays`` therefore never double-counts an idle interval, and the
composed ``latencies`` equal final departure − original arrival exactly.

For a single-stage pipeline the composed end-to-end report **is** the
stage's report object, verbatim — no recomposition, no extra telemetry —
which is what keeps ``ExecutionEngine.serve()`` bit-for-bit identical to
its pre-pipeline self (pinned in ``tests/serving/test_pipeline.py``) and
preserves subclasses such as
:class:`~repro.resilience.report.ResilientServingReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.serving.batcher import BatchingPolicy, DynamicBatcher
from repro.serving.report import ServingReport
from repro.serving.requests import RequestQueue

if TYPE_CHECKING:  # deferred: engine imports this module at runtime
    from repro.serving.engine import ExecutionEngine, ServingConfig

ArrivalsLike = Union[RequestQueue, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class StageResult:
    """One stage's run: its report and when each request left the stage."""

    name: str
    report: ServingReport
    departures: np.ndarray  # per-request seconds; next stage's arrivals

    def __post_init__(self) -> None:
        departures = np.asarray(self.departures, dtype=np.float64)
        if departures.ndim != 1:
            raise ValueError("departures must be a 1-D array")
        if departures.size != self.report.num_requests:
            raise ValueError(
                f"stage {self.name!r}: {departures.size} departures for "
                f"{self.report.num_requests} requests")
        object.__setattr__(self, "departures", departures)


class PipelineStage:
    """Protocol: an arrival trace in, a :class:`StageResult` out.

    Subclasses implement :meth:`serve`. Departures must be sorted
    non-decreasing (requests leave a stage in batch order), because they
    become the next stage's arrival trace.
    """

    name: str = "stage"

    def serve(self, queue: RequestQueue) -> StageResult:
        raise NotImplementedError

    # Helper shared by the concrete stages: per-request departures are the
    # finish time of the batch each request rode in — equivalently
    # arrival + latency, since latency = (batch start − arrival) + service.
    @staticmethod
    def departures_from(queue: RequestQueue,
                        report: ServingReport) -> np.ndarray:
        return queue.arrivals + report.latencies


class EngineStage(PipelineStage):
    """The existing :class:`ExecutionEngine` as a pipeline stage.

    ``policy=None`` keeps the engine's default (greedy at the config's
    batch size), exactly as ``ExecutionEngine.serve`` always resolved it.
    """

    def __init__(self, engine: "ExecutionEngine", config: "ServingConfig",
                 policy: Optional[BatchingPolicy] = None,
                 name: str = "serve") -> None:
        self.engine = engine
        self.config = config
        self.policy = policy
        self.name = name

    def serve(self, queue: RequestQueue) -> StageResult:
        report = self.engine._serve_queue(self.config, queue, self.policy)
        return StageResult(name=self.name, report=report,
                           departures=self.departures_from(queue, report))


class PricedStage(PipelineStage):
    """A stage priced by a per-batch service-time function.

    This is the engine's uncached serve loop with the backend swapped for
    an arbitrary ``service_time(batch_size) -> seconds`` — the shape the
    LLM stages need (tokenize/prefill/decode each price a batch through
    the cost model rather than through a DLRM allocation).

    ``on_batch`` (optional) is called with each formed
    :class:`~repro.serving.batcher.ScheduledBatch` *after* scheduling —
    the seam per-token decode loops and ORAM planners hang off.
    """

    def __init__(self, name: str, policy: BatchingPolicy,
                 service_time: Callable[[int], float],
                 on_batch: Optional[Callable[..., None]] = None) -> None:
        self.name = name
        self.policy = policy
        self.service_time = service_time
        self.on_batch = on_batch

    def serve(self, queue: RequestQueue) -> StageResult:
        batches = DynamicBatcher(self.policy).schedule(queue.arrivals,
                                                       self.service_time)
        queue_delays = np.empty(len(queue), dtype=np.float64)
        service_latencies = np.empty(len(queue), dtype=np.float64)
        for batch in batches:
            window = slice(batch.first, batch.last)
            queue_delays[window] = batch.start_seconds - queue.arrivals[window]
            service_latencies[window] = batch.service_seconds
            if self.on_batch is not None:
                self.on_batch(batch)
        busy = math.fsum(batch.service_seconds for batch in batches)
        report = ServingReport.from_components(
            queue_delays=queue_delays, service_latencies=service_latencies,
            num_batches=len(batches), scan_features=0, dhe_features=0,
            batch_time_total=busy)
        return StageResult(name=self.name, report=report,
                           departures=self.departures_from(queue, report))


@dataclass(frozen=True)
class PipelineReport:
    """Per-stage reports plus the composed end-to-end view.

    ``end_to_end.batch_time_total`` is the **bottleneck** stage's busy
    time (max, not sum): a pipeline's sustained throughput is set by its
    slowest stage, so ``end_to_end.throughput()`` answers the fleet-level
    question. Per-stage busy time is still available in ``stages``.
    """

    stages: List[StageResult] = field(default_factory=list)
    end_to_end: ServingReport = None  # type: ignore[assignment]

    def stage(self, name: str) -> StageResult:
        for result in self.stages:
            if result.name == name:
                return result
        raise KeyError(f"no stage named {name!r}")

    @property
    def departures(self) -> np.ndarray:
        """When each request left the final stage."""
        return self.stages[-1].departures

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable digest: per-stage and end-to-end latency stats."""
        def digest(report: ServingReport) -> Dict[str, object]:
            return {
                "num_requests": report.num_requests,
                "num_batches": report.num_batches,
                "p50_seconds": report.p50,
                "p95_seconds": report.p95,
                "p99_seconds": report.p99,
                "mean_queue_delay_seconds": report.mean_queue_delay,
                "busy_seconds": report.batch_time_total,
                "throughput_rps": report.throughput(),
            }

        return {
            "stages": {result.name: digest(result.report)
                       for result in self.stages},
            "end_to_end": digest(self.end_to_end),
        }


def compose_stage_reports(results: Sequence[StageResult]) -> ServingReport:
    """Fold per-stage reports into one end-to-end :class:`ServingReport`.

    * ``latencies`` sum elementwise — each stage's latency covers the
      contiguous interval [stage arrival, stage departure], and stage
      *k+1*'s arrival *is* stage *k*'s departure, so the sum is exactly
      final departure − original arrival with every inter-stage wait
      counted once (as the downstream stage's queueing delay).
    * The queue/service decomposition is kept only when every stage
      carries it (same rule as :meth:`ServingReport.merge`).
    * ``batch_time_total`` is the max over stages (bottleneck busy time).
    * Cache counters sum when any stage tracks them.
    """
    if not results:
        raise ValueError("compose needs at least one stage result")
    reports = [result.report for result in results]
    first = reports[0]
    if any(r.num_requests != first.num_requests for r in reports):
        raise ValueError("stages disagree on the request population")
    latencies = first.latencies.copy()
    for report in reports[1:]:
        latencies += report.latencies
    queue_delays: Optional[np.ndarray] = None
    service_latencies: Optional[np.ndarray] = None
    if all(r.queue_delays is not None for r in reports):
        queue_delays = np.sum([r.queue_delays for r in reports], axis=0)
    if all(r.service_latencies is not None for r in reports):
        service_latencies = np.sum([r.service_latencies for r in reports],
                                   axis=0)
    cache_hits = cache_misses = cache_bytes = None
    if any(r.tracks_cache for r in reports):
        cache_hits = sum(r.cache_hits or 0 for r in reports)
        cache_misses = sum(r.cache_misses or 0 for r in reports)
        cache_bytes = sum(r.cache_bytes_resident or 0 for r in reports)
    return ServingReport(
        num_requests=first.num_requests,
        num_batches=sum(r.num_batches for r in reports),
        latencies=latencies,
        scan_features=sum(r.scan_features for r in reports),
        dhe_features=sum(r.dhe_features for r in reports),
        batch_time_total=max(r.batch_time_total for r in reports),
        queue_delays=queue_delays,
        service_latencies=service_latencies,
        cache_hits=cache_hits, cache_misses=cache_misses,
        cache_bytes_resident=cache_bytes)


class PipelineEngine:
    """Chain stages: each stage's departures feed the next stage's queue."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        stages = list(stages)
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self.stages = stages

    def serve(self, arrivals: ArrivalsLike) -> PipelineReport:
        queue = (arrivals if isinstance(arrivals, RequestQueue)
                 else RequestQueue(arrivals))
        results: List[StageResult] = []
        for stage in self.stages:
            result = stage.serve(queue)
            results.append(result)
            queue = RequestQueue(result.departures)
        if len(results) == 1:
            # The one-stage special case: the stage's report IS the
            # end-to-end report, object-identical (subclass and all).
            return PipelineReport(stages=results,
                                  end_to_end=results[0].report)
        return PipelineReport(stages=results,
                              end_to_end=compose_stage_reports(results))
