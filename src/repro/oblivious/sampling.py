"""Oblivious stochastic decoding: temperature + top-k sampling (extension).

The paper secures greedy argmax with a cmov scan (§V-C). Production LLM
serving usually samples (temperature, top-k); this module extends the same
discipline: the top-k candidates are selected with constant-trace scans,
their probabilities computed densely, and the final draw reduces to
arithmetic over the k extracted values — no secret-indexed memory access
anywhere.
"""

from __future__ import annotations


import numpy as np

from repro.oblivious.primitives import ct_lt, ct_select, oblivious_topk
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def oblivious_sample_top_k(logits: np.ndarray, k: int,
                           temperature: float = 1.0,
                           rng: SeedLike = None) -> int:
    """Draw a token id from the top-k of ``logits`` with a constant trace.

    1. k constant-trace scans extract the top-k (indices, logits);
    2. a stable softmax over the k values gives probabilities;
    3. inverse-CDF selection over the k candidates runs as a cmov scan.

    The returned value is secret, but every memory access made here depends
    only on ``(len(logits), k)``.
    """
    check_positive("temperature", temperature)
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    indices, values = oblivious_topk(logits, k)

    scaled = values / temperature
    scaled = scaled - scaled.max()
    weights = np.exp(scaled)
    probabilities = weights / weights.sum()

    draw = float(new_rng(rng).random())
    cumulative = 0.0
    chosen = int(indices[0])
    done = 0
    for position in range(k):
        cumulative += float(probabilities[position])
        hit = ct_lt(draw, cumulative)
        first_hit = hit * (1 - done)
        chosen = ct_select(first_hit, int(indices[position]), chosen)
        done = ct_select(hit, 1, done)
    return int(chosen)


def oblivious_sample_batch(logits: np.ndarray, k: int,
                           temperature: float = 1.0,
                           rng: SeedLike = None) -> np.ndarray:
    """Batched version over (batch, vocab) logits."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, vocab) logits, got {logits.shape}")
    generator = new_rng(rng)
    return np.array([
        oblivious_sample_top_k(row, k, temperature=temperature, rng=generator)
        for row in logits
    ], dtype=np.int64)
