"""Oblivious sorting and shuffling: the bitonic network.

Tree ORAMs hide patterns by "shuffling and re-encrypting" (§II-B). The
building block for data-independent shuffling is a sorting *network*: its
compare-exchange sequence is fixed by the input length alone, so sorting
(or shuffling, by sorting on random keys) leaks nothing about the data.
Every compare-exchange goes through the branch-free
:func:`~repro.oblivious.primitives.oblivious_swap`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.oblivious.primitives import ct_lt, oblivious_swap
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_power_of_two


def bitonic_network(length: int) -> List[Tuple[int, int, bool]]:
    """The compare-exchange schedule (i, j, ascending) for ``length`` items.

    ``length`` must be a power of two. The schedule depends only on
    ``length`` — this is the obliviousness property.
    """
    check_power_of_two("length", length)
    schedule: List[Tuple[int, int, bool]] = []
    size = 2
    while size <= length:
        stride = size // 2
        while stride > 0:
            for i in range(length):
                j = i ^ stride
                if j > i:
                    ascending = (i & size) == 0
                    schedule.append((i, j, ascending))
            stride //= 2
        size *= 2
    return schedule


def oblivious_sort(keys: np.ndarray,
                   payload: Optional[np.ndarray] = None
                   ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Bitonic sort of ``keys`` (ascending), carrying ``payload`` rows along.

    Non-power-of-two inputs are padded with +inf sentinel keys (a public
    function of the length). Every compare-exchange touches both operands
    regardless of the comparison outcome.
    """
    keys = np.asarray(keys, dtype=np.float64).reshape(-1).copy()
    if keys.size == 0:
        raise ValueError("oblivious_sort of empty input")
    original = keys.size
    padded = 1 << (original - 1).bit_length()
    sentinel = np.abs(keys).max() + 1.0 if keys.size else 1.0

    work_keys = np.concatenate([keys, np.full(padded - original, sentinel)])
    if payload is not None:
        payload = np.asarray(payload, dtype=np.float64)
        if payload.shape[0] != original:
            raise ValueError(
                f"payload has {payload.shape[0]} rows for {original} keys")
        pad_rows = np.zeros((padded - original, *payload.shape[1:]))
        work_payload = np.concatenate([payload.copy(), pad_rows])
    else:
        work_payload = None

    key_view = work_keys.reshape(-1, 1)  # oblivious_swap works on rows
    for i, j, ascending in bitonic_network(padded):
        if ascending:
            do_swap = ct_lt(work_keys[j], work_keys[i])
        else:
            do_swap = ct_lt(work_keys[i], work_keys[j])
        oblivious_swap(do_swap, key_view[i], key_view[j])
        if work_payload is not None:
            oblivious_swap(do_swap, work_payload[i], work_payload[j])

    sorted_keys = work_keys[:original]
    sorted_payload = (work_payload[:original]
                      if work_payload is not None else None)
    return sorted_keys, sorted_payload


def oblivious_shuffle(rows: np.ndarray, rng: SeedLike = None) -> np.ndarray:
    """Uniformly shuffle ``rows`` with a data-independent access pattern.

    Assigns a random key per row and bitonic-sorts on the keys — the
    permutation is determined entirely by the (secret) keys while the
    touched addresses are the fixed network schedule.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows.reshape(-1, 1)
    keys = new_rng(rng).random(rows.shape[0])
    _, shuffled = oblivious_sort(keys, rows)
    return shuffled
