"""Oblivious linear scan: the storage-based baseline protection (§IV-A1).

Looking up index ``i`` touches *every* row of the table and blends the wanted
row into the output with a branch-free flag — O(n) per lookup, but the access
pattern is the same full sweep for every index.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.oblivious.primitives import ct_eq, oblivious_copy_row
from repro.oblivious.trace import TracedArray


def linear_scan_lookup(table: TracedArray, index: int) -> np.ndarray:
    """Retrieve row ``index`` by scanning the whole table.

    The scan visits rows ``0..n-1`` in order regardless of ``index``; at each
    step an equality mask drives an oblivious blend into the output buffer.
    """
    if not 0 <= int(index) < table.num_rows:
        raise IndexError(f"index {index} out of range for table of {table.num_rows} rows")
    output = np.zeros(table.row_width, dtype=table.data.dtype)
    wanted = int(index)
    for row in range(table.num_rows):
        value = table.read(row)
        flag = ct_eq(row, wanted)
        oblivious_copy_row(flag, value, output)
    return output


def linear_scan_batch(table: TracedArray, indices: Sequence[int]) -> np.ndarray:
    """Batched scan: one full sweep per query (the paper's implementation).

    The C++/AVX version scans the entire embedding table for each input index
    in the batch; we reproduce that access pattern row-for-row — each query
    still issues a complete sequential sweep on the tracer — but the scalar
    per-row blend chain is collapsed into a single masked matmul over the
    whole batch. The mask holds exactly one ``1.0`` per query, so every
    product is the wanted row or an exact ``0.0`` and the result is
    bit-identical to the per-row oblivious blends it replaces.
    """
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    for wanted in indices:
        if not 0 <= int(wanted) < table.num_rows:
            raise IndexError(f"index {wanted} out of range for table of "
                             f"{table.num_rows} rows")
    if indices.size == 0:
        return np.zeros((0, table.row_width), dtype=table.data.dtype)
    data = table.read_all()
    for _ in range(indices.size - 1):
        table.read_all()  # the remaining sweeps, one per query, as before
    onehot = (indices[:, None]
              == np.arange(table.num_rows)[None, :]).astype(data.dtype)
    return onehot @ data


def linear_scan_batch_vectorized(table_data: np.ndarray,
                                 indices: Sequence[int]) -> np.ndarray:
    """Vectorised scan used for *performance* runs (tracing disabled).

    Computes ``onehot(indices) @ table`` — the same arithmetic as the scalar
    scan (every row participates in every query's blend), expressed as a
    dense matmul so numpy's BLAS plays the role of AVX-512. The memory
    pattern is a full sequential sweep of the table per batch, which is what
    the AVX implementation streams as well.
    """
    table_data = np.asarray(table_data)
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    if indices.size and (indices.min() < 0 or indices.max() >= table_data.shape[0]):
        raise IndexError("index out of range in linear_scan_batch_vectorized")
    onehot = np.zeros((indices.size, table_data.shape[0]), dtype=table_data.dtype)
    onehot[np.arange(indices.size), indices] = 1.0

    # Under an active lazy runtime the masked matmul replays from the graph
    # cache, keyed on (table identity, batch shape): same arithmetic, same
    # full-sweep pattern, no per-call dispatch. Empty batches short-circuit
    # eagerly (nothing to capture). Imports deferred: repro.lazy's scheduler
    # imports repro.oblivious.trace, whose package initialises this module.
    from repro.lazy.runtime import get_active_runtime

    runtime = get_active_runtime()
    if runtime is None or indices.size == 0:
        return onehot @ table_data
    from repro.lazy.capture import capture

    key = ("scan.matmul", id(table_data), onehot.shape)
    graph = runtime.captured(key, lambda: capture(
        lambda mask: mask @ table_data, [onehot], runtime=runtime,
        name=f"scan.matmul.b{indices.size}"))
    return graph(onehot)
