"""Memory-access tracing: the measurement tool behind every security claim.

On real hardware the paper's threat model is an attacker observing the
*addresses* a victim touches (cache sets, pages, DRAM rows). In this
reproduction we make that observer explicit: a :class:`MemoryTracer` records
every (operation, region, address) event issued against a
:class:`TracedArray`. Security tests then assert **trace equivalence**: a
data-oblivious implementation must produce the identical event sequence for
every secret input.

This is deliberately stronger than timing measurements — any single
divergent address is caught deterministically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class AccessEvent:
    """One observed memory access: R/W of ``region`` at row ``address``."""

    op: str
    region: str
    address: int

    def __str__(self) -> str:
        return f"{self.op} {self.region}[{self.address}]"


class MemoryTracer:
    """Records the sequence of memory accesses issued by traced code."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[AccessEvent] = []

    def record(self, op: str, region: str, address: int) -> None:
        if self.enabled:
            self.events.append(AccessEvent(op, region, int(address)))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self.events)

    def addresses(self, region: Optional[str] = None) -> List[int]:
        """The address sequence, optionally restricted to one region."""
        return [e.address for e in self.events
                if region is None or e.region == region]

    def digest(self) -> str:
        """A stable hash of the full event sequence (for compact comparison)."""
        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(f"{event.op}|{event.region}|{event.address};".encode())
        return hasher.hexdigest()

    def snapshot(self) -> Tuple[AccessEvent, ...]:
        return tuple(self.events)


class TracedArray:
    """A 2-D array whose row accesses are reported to a :class:`MemoryTracer`.

    Rows model the paper's observable granularity: every real embedding-table
    entry spans at least a cache line, so a row index is what the LLC
    attacker learns. ``tracer=None`` disables tracing with near-zero cost,
    which the benchmarks use.
    """

    def __init__(self, data: np.ndarray, name: str,
                 tracer: Optional[MemoryTracer] = None) -> None:
        data = np.asarray(data)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if data.ndim != 2:
            raise ValueError(f"TracedArray requires 1-D or 2-D data, got ndim={data.ndim}")
        self.data = data
        self.name = name
        self.tracer = tracer

    @property
    def num_rows(self) -> int:
        return self.data.shape[0]

    @property
    def row_width(self) -> int:
        return self.data.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.data.shape

    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row {index} out of range for {self.name}[{self.num_rows}]")
        return index

    def read(self, index: int) -> np.ndarray:
        """Read one row (a copy), reporting the access."""
        index = self._check(index)
        if self.tracer is not None:
            self.tracer.record(READ, self.name, index)
        return self.data[index].copy()

    def write(self, index: int, value: np.ndarray) -> None:
        """Write one row, reporting the access."""
        index = self._check(index)
        if self.tracer is not None:
            self.tracer.record(WRITE, self.name, index)
        self.data[index] = value

    def read_all(self) -> np.ndarray:
        """Sequentially read every row (the linear-scan access pattern)."""
        if self.tracer is not None:
            for index in range(self.num_rows):
                self.tracer.record(READ, self.name, index)
        return self.data.copy()


def traces_equal(a: Sequence[AccessEvent], b: Sequence[AccessEvent]) -> bool:
    """True when two event sequences are identical."""
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))
