"""Data-oblivious computing primitives and the trace-equivalence verifier."""

from repro.oblivious.analysis import (
    TraceComparison,
    assert_trace_oblivious,
    compare_traces,
)
from repro.oblivious.linear_scan import (
    linear_scan_batch,
    linear_scan_batch_vectorized,
    linear_scan_lookup,
)
from repro.oblivious.primitives import (
    branchless_relu,
    ct_eq,
    ct_lt,
    ct_select,
    oblivious_argmax,
    oblivious_argmax_vectorized,
    oblivious_copy_row,
    oblivious_max,
    oblivious_swap,
    oblivious_topk,
)
from repro.oblivious.sort import (
    bitonic_network,
    oblivious_shuffle,
    oblivious_sort,
)
from repro.oblivious.sampling import (
    oblivious_sample_batch,
    oblivious_sample_top_k,
)
from repro.oblivious.trace import (
    READ,
    WRITE,
    AccessEvent,
    MemoryTracer,
    TracedArray,
    traces_equal,
)

__all__ = [
    "TraceComparison",
    "assert_trace_oblivious",
    "compare_traces",
    "linear_scan_batch",
    "linear_scan_batch_vectorized",
    "linear_scan_lookup",
    "branchless_relu",
    "ct_eq",
    "ct_lt",
    "ct_select",
    "oblivious_argmax",
    "oblivious_argmax_vectorized",
    "oblivious_copy_row",
    "oblivious_max",
    "oblivious_swap",
    "oblivious_topk",
    "bitonic_network",
    "oblivious_shuffle",
    "oblivious_sort",
    "oblivious_sample_batch",
    "oblivious_sample_top_k",
    "READ",
    "WRITE",
    "AccessEvent",
    "MemoryTracer",
    "TracedArray",
    "traces_equal",
]
