"""Trace-equivalence analysis: the obliviousness verifier.

:func:`assert_trace_oblivious` runs a computation once per candidate secret
and checks that the recorded access traces are identical — the definitional
test for data-obliviousness in our threat model. The companion
:func:`trace_report` returns a structured comparison for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.oblivious.trace import AccessEvent, MemoryTracer, traces_equal


@dataclass
class TraceComparison:
    """Result of comparing traces across secrets."""

    oblivious: bool
    num_secrets: int
    trace_length: int
    first_divergence: Optional[Tuple[int, int, str, str]] = None
    # (secret_index, event_index, reference_event, divergent_event)

    def __str__(self) -> str:
        if self.oblivious:
            return (f"oblivious over {self.num_secrets} secrets "
                    f"(trace length {self.trace_length})")
        secret, position, ref, got = self.first_divergence
        return (f"NOT oblivious: secret #{secret} diverges at event {position}: "
                f"expected {ref}, observed {got}")


def compare_traces(fn: Callable[[MemoryTracer, object], object],
                   secrets: Sequence[object]) -> TraceComparison:
    """Run ``fn(tracer, secret)`` per secret and compare access traces."""
    if len(secrets) < 2:
        raise ValueError("need at least two secrets to compare traces")
    reference: Optional[Tuple[AccessEvent, ...]] = None
    for secret_index, secret in enumerate(secrets):
        tracer = MemoryTracer()
        fn(tracer, secret)
        trace = tracer.snapshot()
        if reference is None:
            reference = trace
            continue
        if traces_equal(reference, trace):
            continue
        # Locate the first divergence for the report.
        limit = min(len(reference), len(trace))
        position = next(
            (i for i in range(limit) if reference[i] != trace[i]), limit)
        ref_event = str(reference[position]) if position < len(reference) else "<end>"
        got_event = str(trace[position]) if position < len(trace) else "<end>"
        return TraceComparison(
            oblivious=False,
            num_secrets=len(secrets),
            trace_length=len(reference),
            first_divergence=(secret_index, position, ref_event, got_event),
        )
    return TraceComparison(oblivious=True, num_secrets=len(secrets),
                           trace_length=len(reference))


def assert_trace_oblivious(fn: Callable[[MemoryTracer, object], object],
                           secrets: Sequence[object]) -> TraceComparison:
    """Raise ``AssertionError`` unless ``fn`` is trace-oblivious over ``secrets``."""
    result = compare_traces(fn, secrets)
    if not result.oblivious:
        raise AssertionError(str(result))
    return result
