"""Constant-trace computational primitives.

These mirror the branchless building blocks the paper's C++/AVX code uses:

* ``ct_select`` — the ``cmov`` conditional move (register-level predication),
* ``ct_eq`` / ``ct_lt`` — branch-free comparisons producing 0/1 masks,
* ``oblivious_copy_row`` — the AVX *blend* used by the linear scan,
* ``branchless_relu`` — the SIMD max(0, x) ReLU of §V-A3,
* ``oblivious_argmax`` — the cmov-based greedy-sampling argmax of §V-C.

All of them are pure arithmetic over already-loaded values: Python control
flow never depends on the secret operand, and no data-dependent index is
formed.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

Number = Union[int, float, np.ndarray]


def ct_eq(a: Number, b: Number) -> Number:
    """Branch-free equality: 1 where ``a == b`` else 0 (vectorised).

    Implemented with arithmetic on the XOR difference rather than a Python
    ``if``; for arrays numpy evaluates both lanes unconditionally, matching
    SIMD mask-generation semantics.
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if np.issubdtype(a_arr.dtype, np.integer) and np.issubdtype(b_arr.dtype, np.integer):
        diff = a_arr ^ b_arr
        mask = 1 - np.minimum(1, np.abs(diff))
    else:
        mask = (np.abs(a_arr - b_arr) == 0).astype(np.int64)
    if np.isscalar(a) and np.isscalar(b):
        return int(mask)
    return mask


def ct_lt(a: Number, b: Number) -> Number:
    """Branch-free less-than: 1 where ``a < b`` else 0."""
    mask = (np.asarray(a) < np.asarray(b)).astype(np.int64)
    if np.isscalar(a) and np.isscalar(b):
        return int(mask)
    return mask


def ct_select(cond: Number, if_true: Number, if_false: Number) -> Number:
    """``cmov``: return ``if_true`` where ``cond`` is 1, else ``if_false``.

    ``cond`` must already be a 0/1 mask; both operands are always evaluated,
    so the selection leaves no control-flow or access-pattern trace.
    """
    cond_arr = np.asarray(cond)
    result = np.asarray(if_true) * cond_arr + np.asarray(if_false) * (1 - cond_arr)
    if np.isscalar(if_true) and np.isscalar(if_false) and np.isscalar(cond):
        if isinstance(if_true, int) and isinstance(if_false, int):
            return int(result)
        return float(result)
    return result


def oblivious_copy_row(flag: int, source_row: np.ndarray,
                       destination: np.ndarray) -> None:
    """AVX-blend analogue: ``destination = source_row`` iff ``flag`` is 1.

    Both the multiply and the add happen for every scan step, so the write
    pattern is identical whether or not this row is the wanted one.
    """
    flag_f = float(flag)
    destination *= (1.0 - flag_f)
    destination += source_row * flag_f


def oblivious_swap(flag: int, a: np.ndarray, b: np.ndarray) -> None:
    """Swap rows ``a`` and ``b`` in place iff ``flag`` is 1, branch-free.

    Implemented as a masked XOR on the raw bit patterns — the classic
    cmov/xor swap. Unlike an arithmetic blend this is *exact* for every
    value (an arithmetic ``a -= (a-b)*flag`` loses tiny operands to
    rounding when magnitudes differ). Used by the sorting network and the
    ORAM controllers' shuffling.
    """
    if a.shape != b.shape or a.dtype != b.dtype:
        raise ValueError("oblivious_swap requires same-shape, same-dtype rows")
    mask = np.uint8(0xFF) * np.uint8(int(flag))
    a_bytes = a.view(np.uint8)
    b_bytes = b.view(np.uint8)
    delta = (a_bytes ^ b_bytes) & mask
    a_bytes ^= delta
    b_bytes ^= delta


def branchless_relu(x: np.ndarray) -> np.ndarray:
    """ReLU without a data-dependent branch: ``(x + |x|) / 2``.

    Matches the paper's AVX-512 proof-of-concept — an arithmetic identity
    evaluated for every element.
    """
    x = np.asarray(x)
    return (x + np.abs(x)) * 0.5


def oblivious_argmax(values: Sequence[float]) -> int:
    """Linear-scan argmax using cmov updates (§V-C greedy sampling).

    Every element is visited exactly once; the running best value/index are
    updated with ``ct_select`` so neither control flow nor memory pattern
    depends on the data.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("oblivious_argmax of empty sequence")
    best_value = float(values[0])
    best_index = 0
    for index in range(1, values.size):
        current = float(values[index])
        take = ct_lt(best_value, current)
        best_value = ct_select(take, current, best_value)
        best_index = ct_select(take, index, best_index)
    return int(best_index)


def oblivious_topk(values: Sequence[float], k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Constant-trace top-k selection: k full cmov scans over the data.

    Extends the paper's oblivious greedy argmax (§V-C) to top-k sampling:
    each round scans every element, cmov-tracking the best not-yet-taken
    entry, then arithmetically masks it out. The trace depends only on
    ``(len(values), k)``. Returns (indices, values), best first.
    """
    data = np.asarray(values, dtype=np.float64).reshape(-1)
    if data.size == 0:
        raise ValueError("oblivious_topk of empty sequence")
    if not 1 <= k <= data.size:
        raise ValueError(f"k must be in [1, {data.size}], got {k}")
    taken = np.zeros(data.size, dtype=np.int64)
    top_indices = np.empty(k, dtype=np.int64)
    top_values = np.empty(k)
    floor = float(data.min()) - 1.0
    for round_index in range(k):
        best_value = floor
        best_index = 0
        for position in range(data.size):
            candidate = ct_select(int(taken[position]), floor,
                                  float(data[position]))
            take = ct_lt(best_value, candidate)
            best_value = ct_select(take, candidate, best_value)
            best_index = ct_select(take, position, best_index)
        top_indices[round_index] = best_index
        top_values[round_index] = best_value
        # Branch-free mark: every slot participates in the update.
        marks = ct_eq(np.arange(data.size), best_index)
        taken = taken | marks
    return top_indices, top_values


def oblivious_max(values: Sequence[float]) -> float:
    """Constant-trace maximum via the same cmov scan."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("oblivious_max of empty sequence")
    best = float(values[0])
    for index in range(1, values.size):
        current = float(values[index])
        best = ct_select(ct_lt(best, current), current, best)
    return float(best)


def oblivious_argmax_vectorized(values: Sequence[float]) -> int:
    """Branchless tournament argmax — the SIMD fast path.

    ceil(log2 n) halving rounds; each round compares the two halves with a
    full-width arithmetic mask and blends values and indices. Every lane is
    touched in every round regardless of the data, mirroring an AVX
    max-reduction: the trace depends only on ``n``. Returns the index of
    *a* maximal element (under ties the reduction order, not scan order,
    decides — unlike :func:`oblivious_argmax`, which keeps the first).
    """
    data = np.asarray(values, dtype=np.float64).reshape(-1).copy()
    if data.size == 0:
        raise ValueError("oblivious_argmax_vectorized of empty sequence")
    indices = np.arange(data.size, dtype=np.int64)
    # Finite floor for padding lanes (an infinite sentinel would produce
    # NaN in the arithmetic blend: -inf * 0 is undefined).
    floor = float(data.min()) - 1.0
    while data.size > 1:
        half = (data.size + 1) // 2
        left_values, left_indices = data[:half], indices[:half]
        right_values, right_indices = data[half:], indices[half:]
        if right_values.size < half:
            pad = half - right_values.size
            right_values = np.concatenate([right_values,
                                           np.full(pad, floor)])
            right_indices = np.concatenate([right_indices,
                                            np.zeros(pad, dtype=np.int64)])
        take_right = (right_values > left_values).astype(np.int64)
        data = np.asarray(ct_select(take_right, right_values, left_values),
                          dtype=np.float64)
        indices = np.asarray(ct_select(take_right, right_indices,
                                       left_indices), dtype=np.int64)
    return int(indices[0])
