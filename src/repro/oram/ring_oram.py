"""Ring ORAM (Ren et al.) — the bandwidth-optimised tree ORAM (extension).

The paper evaluates Path and Circuit ORAM and notes other proposals exist
(§VII). Ring ORAM is the canonical third point in that design space: reads
fetch **one slot per bucket** (instead of whole buckets) because buckets
carry ``S`` dummy slots consumed one per touch, with periodic evictions and
per-bucket early reshuffles restoring the invariant. This implementation
models that protocol faithfully enough to compare bandwidth/stash behaviour
against Path/Circuit in the ablation bench:

* each bucket holds ``Z`` real + ``S`` dummy slots and a touch counter;
* ReadPath touches exactly one payload slot per bucket (the target where it
  lives, a fresh dummy elsewhere), then invalidates it;
* every ``A`` accesses an EvictPath runs on the reverse-lexicographic path
  (read all valid reals, greedy writeback, reset counters);
* a bucket touched ``S`` times since its last write is early-reshuffled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.oram.circuit_oram import bit_reverse
from repro.oram.controller import OramController, UpdateFn
from repro.oram.tree import DUMMY
from repro.utils.validation import check_positive


class RingORAM(OramController):
    """Tree ORAM with single-slot bucket reads and batched evictions."""

    DEFAULT_STASH = 80
    DEFAULT_RECURSION_CUTOFF = 1 << 16

    def __init__(self, num_blocks: int, block_width: int,
                 initial_payloads: Optional[np.ndarray] = None,
                 bucket_reals: int = 4, bucket_dummies: int = 4,
                 evict_rate: int = 4, **kwargs) -> None:
        check_positive("bucket_reals", bucket_reals)
        check_positive("bucket_dummies", bucket_dummies)
        check_positive("evict_rate", evict_rate)
        self.bucket_reals = bucket_reals
        self.bucket_dummies = bucket_dummies
        self.evict_rate = evict_rate
        self._access_counter = 0
        self._evict_counter = 0
        # Recursive position-map construction passes bucket_size through the
        # generic factory; Ring derives its own (Z + S), so drop it.
        kwargs.pop("bucket_size", None)
        super().__init__(num_blocks, block_width,
                         initial_payloads=initial_payloads,
                         bucket_size=bucket_reals + bucket_dummies,
                         **kwargs)
        # Per-slot validity (unconsumed since last bucket write) and
        # per-bucket touch counters — the client-side Ring metadata.
        self._valid = np.ones((self.tree.num_buckets, self.bucket_size),
                              dtype=bool)
        self._touches = np.zeros(self.tree.num_buckets, dtype=np.int64)

    # ------------------------------------------------------------------
    # Initial placement: respect the Z-real capacity per bucket.
    # ------------------------------------------------------------------
    def _load(self, payloads, leaves) -> None:
        if payloads is None:
            payloads = np.zeros((self.num_blocks, self.block_width))
        payloads = np.asarray(payloads, dtype=np.float64)
        if payloads.shape != (self.num_blocks, self.block_width):
            raise ValueError(
                f"initial payloads shape {payloads.shape} != "
                f"({self.num_blocks}, {self.block_width})")
        for block_id in range(self.num_blocks):
            leaf = int(leaves[block_id])
            placed = False
            for bucket in reversed(self.tree.path_indices(leaf)):
                real_used = int((self.tree.ids[bucket, : self.bucket_reals]
                                 != DUMMY).sum())
                if real_used < self.bucket_reals:
                    slot = real_used
                    self.tree.ids[bucket, slot] = block_id
                    self.tree.leaves[bucket, slot] = leaf
                    self.tree.payloads[bucket, slot] = payloads[block_id]
                    placed = True
                    break
            if not placed:
                self.stash.add(block_id, leaf, payloads[block_id])

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------
    def _access_impl(self, block_id: int, old_leaf: int, new_leaf: int,
                     update_fn: Optional[UpdateFn]) -> np.ndarray:
        payload = self._read_path(block_id, old_leaf)
        result = payload.copy()
        if update_fn is not None:
            payload = np.asarray(update_fn(payload), dtype=np.float64)
            if payload.shape != (self.block_width,):
                raise ValueError(
                    f"update produced shape {payload.shape}, expected "
                    f"({self.block_width},)")
        self.stash.add(block_id, new_leaf, payload)

        self._access_counter += 1
        if self._access_counter % self.evict_rate == 0:
            evict_leaf = bit_reverse(
                self._evict_counter % self.tree.num_leaves
                if self.tree.num_leaves > 1 else 0, self.tree.levels)
            self._evict_counter += 1
            self._evict_path(evict_leaf)
            self.stats.eviction_passes += 1

        # Early reshuffle any bucket whose dummies are exhausted.
        for bucket in np.nonzero(self._touches >= self.bucket_dummies)[0]:
            self._reshuffle_bucket(int(bucket))

        self._check_stash_bound()
        return result

    def _background_evict_pass(self, leaf: int) -> None:
        """Request-free stash drain: continue the reverse-lex evict order.

        ``leaf`` is ignored — Ring ORAM's eviction path comes from its own
        deterministic schedule, not the caller.
        """
        del leaf
        evict_leaf = bit_reverse(
            self._evict_counter % self.tree.num_leaves
            if self.tree.num_leaves > 1 else 0, self.tree.levels)
        self._evict_counter += 1
        self._evict_path(evict_leaf)

    def _read_path(self, block_id: int, leaf: int) -> np.ndarray:
        """One payload-slot touch per bucket along the path."""
        payload: Optional[np.ndarray] = None
        stash_hit = self.stash.remove(block_id)
        if stash_hit is not None:
            payload = stash_hit[1]
        for bucket in self.tree.path_indices(leaf):
            ids, _ = self.tree.read_bucket_metadata(bucket)
            valid = self._valid[bucket]
            target_slots = np.nonzero((ids == block_id) & valid)[0]
            if payload is None and target_slots.size:
                slot = int(target_slots[0])
                payload = self.tree.payloads[bucket, slot].copy()
            else:
                slot = self._fresh_dummy_slot(bucket, ids)
            # Exactly one payload-slot read, whatever it held.
            self.stats.bucket_reads += 1
            if self.tracer is not None:
                self.tracer.record("R", self.tree.region, bucket)
            self._valid[bucket, slot] = False
            self._touches[bucket] += 1
        if payload is None:
            raise KeyError(f"block {block_id} not found — ORAM invariant broken")
        return payload

    def _fresh_dummy_slot(self, bucket: int, ids: np.ndarray) -> int:
        """A valid slot not holding a live real block (prefer true dummies)."""
        valid = self._valid[bucket]
        dummies = np.nonzero(valid & (ids == DUMMY))[0]
        if dummies.size:
            return int(self.rng.choice(dummies))
        self._reshuffle_bucket(bucket)
        ids = self.tree.ids[bucket]
        dummies = np.nonzero(self._valid[bucket] & (ids == DUMMY))[0]
        return int(self.rng.choice(dummies))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _live_blocks(self, bucket: int):
        """(id, leaf, payload) of valid real slots in a bucket."""
        blocks = []
        for slot in range(self.bucket_size):
            block_id = int(self.tree.ids[bucket, slot])
            if block_id != DUMMY and self._valid[bucket, slot]:
                blocks.append((block_id,
                               int(self.tree.leaves[bucket, slot]),
                               self.tree.payloads[bucket, slot].copy()))
        return blocks

    def _write_bucket(self, bucket: int, blocks) -> None:
        """Install up to Z real blocks, refresh dummies/validity/counter."""
        ids = np.full(self.bucket_size, DUMMY, dtype=np.int64)
        leaves = np.zeros(self.bucket_size, dtype=np.int64)
        payloads = np.zeros((self.bucket_size, self.block_width))
        for slot, (block_id, leaf, payload) in enumerate(blocks):
            ids[slot] = block_id
            leaves[slot] = leaf
            payloads[slot] = payload
        self.tree.write_bucket(bucket, ids, leaves, payloads)
        self.stats.bucket_writes += 1
        self._valid[bucket] = True
        self._touches[bucket] = 0

    def _reshuffle_bucket(self, bucket: int) -> None:
        """Early reshuffle: rewrite a bucket whose dummies ran out."""
        blocks = self._live_blocks(bucket)
        self.stats.bucket_reads += 1  # full-bucket read
        self._write_bucket(bucket, blocks)

    def _evict_path(self, leaf: int) -> None:
        """Path-ORAM-style eviction of the reverse-lex path."""
        path = self.tree.path_indices(leaf)
        for bucket in path:
            for block in self._live_blocks(bucket):
                self.stash.add(*block)
            self.stats.bucket_reads += 1
            self._valid[bucket] = False  # everything moved out
        for depth in range(self.tree.levels, -1, -1):
            bucket = path[depth]
            eligible = self.stash.evict_matching(
                lambda block_leaf, d=depth:
                self.tree.common_depth(block_leaf, leaf) >= d)
            chosen = eligible[: self.bucket_reals]
            for extra in eligible[self.bucket_reals:]:
                self.stash.add(*extra)
            self._write_bucket(bucket, chosen)

    # ------------------------------------------------------------------
    def total_resident_blocks(self) -> int:
        live = 0
        for bucket in range(self.tree.num_buckets):
            live += len(self._live_blocks(bucket))
        return live + self.stash.occupancy
