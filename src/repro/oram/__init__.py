"""Tree-based ORAM controllers (Path ORAM and Circuit ORAM) with recursion."""

from repro.oram.circuit_oram import CircuitORAM, bit_reverse
from repro.oram.controller import AccessStats, OramController
from repro.oram.crypto import EncryptedBucketTree, KeystreamCipher
from repro.oram.lookahead import (
    LOOKAHEAD_REGION,
    BatchPlan,
    SequentialLeakingBatcher,
    contrasting_batches,
    lookahead_access_batch,
    lookahead_subjects,
)
from repro.oram.path_oram import PathORAM
from repro.oram.ring_oram import RingORAM
from repro.oram.sqrt_oram import SqrtORAM
from repro.oram.position_map import (
    POSMAP_COMPRESSION,
    FlatPositionMap,
    OramPositionMap,
    PositionMap,
)
from repro.oram.stash import Stash, StashOverflowError
from repro.oram.tree import DUMMY, BucketTree, tree_levels_for

__all__ = [
    "CircuitORAM",
    "bit_reverse",
    "LOOKAHEAD_REGION",
    "BatchPlan",
    "SequentialLeakingBatcher",
    "contrasting_batches",
    "lookahead_access_batch",
    "lookahead_subjects",
    "AccessStats",
    "OramController",
    "EncryptedBucketTree",
    "KeystreamCipher",
    "PathORAM",
    "RingORAM",
    "SqrtORAM",
    "POSMAP_COMPRESSION",
    "FlatPositionMap",
    "OramPositionMap",
    "PositionMap",
    "Stash",
    "StashOverflowError",
    "DUMMY",
    "BucketTree",
    "tree_levels_for",
]
