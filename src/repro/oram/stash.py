"""The ORAM stash: a small client-side buffer scanned obliviously.

ZeroTrace hardens its stash with ``cmov``-based full scans; we reproduce the
same discipline — every lookup touches all capacity slots (reported to the
tracer under region ``"stash"``), so stash traffic is independent of content.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.oram.tree import DUMMY
from repro.utils.validation import check_positive


class StashOverflowError(RuntimeError):
    """Raised when more real blocks are resident than the stash can hold."""


class Stash:
    """Fixed-capacity block buffer with oblivious full-scan semantics."""

    def __init__(self, capacity: int, block_width: int,
                 tracer: Optional[MemoryTracer] = None,
                 region: str = "stash", dtype=np.float64) -> None:
        check_positive("capacity", capacity)
        check_positive("block_width", block_width)
        self.capacity = capacity
        self.block_width = block_width
        self.tracer = tracer
        self.region = region
        self.ids = np.full(capacity, DUMMY, dtype=np.int64)
        self.leaves = np.zeros(capacity, dtype=np.int64)
        self.payloads = np.zeros((capacity, block_width), dtype=dtype)
        self.peak_occupancy = 0

    def _scan_trace(self, op: str) -> None:
        if self.tracer is not None:
            for slot in range(self.capacity):
                self.tracer.record(op, self.region, slot)

    @property
    def occupancy(self) -> int:
        return int((self.ids != DUMMY).sum())

    def _note_occupancy(self) -> None:
        occ = self.occupancy
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ

    # ------------------------------------------------------------------
    def add(self, block_id: int, leaf: int, payload: np.ndarray) -> None:
        """Insert a real block into the first free slot (oblivious scan)."""
        self._scan_trace(WRITE)
        free = np.nonzero(self.ids == DUMMY)[0]
        if free.size == 0:
            raise StashOverflowError(
                f"stash capacity {self.capacity} exceeded adding block {block_id}")
        slot = int(free[0])
        self.ids[slot] = block_id
        self.leaves[slot] = leaf
        self.payloads[slot] = payload
        self._note_occupancy()

    def remove(self, block_id: int) -> Optional[Tuple[int, np.ndarray]]:
        """Remove and return (leaf, payload) of ``block_id``; None if absent."""
        self._scan_trace(READ)
        matches = np.nonzero(self.ids == block_id)[0]
        if matches.size == 0:
            return None
        slot = int(matches[0])
        leaf = int(self.leaves[slot])
        payload = self.payloads[slot].copy()
        self.ids[slot] = DUMMY
        return leaf, payload

    def peek(self, block_id: int) -> Optional[Tuple[int, np.ndarray]]:
        """Read a block without removing it (oblivious scan)."""
        self._scan_trace(READ)
        matches = np.nonzero(self.ids == block_id)[0]
        if matches.size == 0:
            return None
        slot = int(matches[0])
        return int(self.leaves[slot]), self.payloads[slot].copy()

    def update(self, block_id: int, leaf: Optional[int] = None,
               payload: Optional[np.ndarray] = None) -> bool:
        """Update an existing block in place; returns False if absent."""
        self._scan_trace(WRITE)
        matches = np.nonzero(self.ids == block_id)[0]
        if matches.size == 0:
            return False
        slot = int(matches[0])
        if leaf is not None:
            self.leaves[slot] = leaf
        if payload is not None:
            self.payloads[slot] = payload
        return True

    # ------------------------------------------------------------------
    def resident_blocks(self) -> List[Tuple[int, int, np.ndarray]]:
        """All real blocks as (id, leaf, payload) — a full scan."""
        self._scan_trace(READ)
        out = []
        for slot in np.nonzero(self.ids != DUMMY)[0]:
            out.append((int(self.ids[slot]), int(self.leaves[slot]),
                        self.payloads[slot].copy()))
        return out

    def evict_matching(self, predicate) -> List[Tuple[int, int, np.ndarray]]:
        """Remove and return every block for which ``predicate(leaf)`` holds."""
        self._scan_trace(WRITE)
        taken = []
        for slot in np.nonzero(self.ids != DUMMY)[0]:
            if predicate(int(self.leaves[slot])):
                taken.append((int(self.ids[slot]), int(self.leaves[slot]),
                              self.payloads[slot].copy()))
                self.ids[slot] = DUMMY
        return taken

    def take_matching(self, predicate,
                      limit: int) -> List[Tuple[int, int, np.ndarray]]:
        """Remove up to ``limit`` blocks matching ``predicate(leaf)``.

        One oblivious scan regardless of how many blocks match — the fused
        batched write-back uses this so its stash traffic is bucket-count
        constant (``evict_matching`` + per-block re-add would leak the
        overflow count through extra scans).
        """
        check_positive("limit", limit)
        self._scan_trace(WRITE)
        taken: List[Tuple[int, int, np.ndarray]] = []
        for slot in np.nonzero(self.ids != DUMMY)[0]:
            if len(taken) == limit:
                break
            if predicate(int(self.leaves[slot])):
                taken.append((int(self.ids[slot]), int(self.leaves[slot]),
                              self.payloads[slot].copy()))
                self.ids[slot] = DUMMY
        return taken

    def grow(self, new_capacity: int) -> None:
        """Extend the physical buffer to ``new_capacity`` slots.

        Sizing is a *public* decision (batch size and tree depth, never
        block identity): batched lookahead fetches transiently hold more
        than one path's worth of blocks, so the buffer is grown up front
        rather than overflowing mid-fetch.
        """
        check_positive("new_capacity", new_capacity)
        if new_capacity <= self.capacity:
            return
        extra = new_capacity - self.capacity
        self.ids = np.concatenate(
            [self.ids, np.full(extra, DUMMY, dtype=np.int64)])
        self.leaves = np.concatenate(
            [self.leaves, np.zeros(extra, dtype=np.int64)])
        self.payloads = np.concatenate(
            [self.payloads,
             np.zeros((extra, self.block_width), dtype=self.payloads.dtype)])
        self.capacity = new_capacity
