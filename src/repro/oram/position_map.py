"""Position maps: flat (oblivious linear scan) and recursive (ORAM-backed).

ZeroTrace protects its position map either by scanning it linearly with
``cmov`` (small maps) or, above a recursion cutoff, by storing it inside a
smaller ORAM whose own map recurses again — with a 16x compression factor
per level (each recursive block packs 16 leaf labels), as in §V-A1.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.oblivious.primitives import ct_eq, ct_select
from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.utils.validation import check_positive

POSMAP_COMPRESSION = 16


def _check_batch(block_ids: Sequence[int],
                 new_leaves: Sequence[int]) -> List[int]:
    ids = [int(block_id) for block_id in block_ids]
    if len(ids) != len(new_leaves):
        raise ValueError(
            f"{len(ids)} block ids but {len(new_leaves)} new leaves")
    if len(set(ids)) != len(ids):
        raise ValueError("batched position-map lookups take *unique* block "
                         "ids; deduplicate duplicates first (the lookahead "
                         "planner does)")
    return ids


class PositionMap:
    """Interface: look up a block's leaf while installing its new leaf."""

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        raise NotImplementedError

    def refresh(self, block_id: int) -> None:
        """A dummy lookup: touch the map exactly like a real lookup while
        reinstalling the block's current leaf. Batched modes use this to
        pad per-lookup implementations to a public lookup count."""
        raise NotImplementedError

    def work_ops(self) -> int:
        """Memory operations spent inside the map so far (the amortization
        metric batched lookahead access reduces)."""
        raise NotImplementedError

    def lookup_and_update_batch(self, block_ids: Sequence[int],
                                new_leaves: Sequence[int],
                                pad_to: int = 0) -> List[int]:
        """Look up/update a whole batch of *unique* block ids at once.

        Returns the old leaves in batch order. The generic fallback is one
        sequential lookup per id, padded with :meth:`refresh` dummies up to
        ``pad_to`` lookups so the map traffic depends only on the public
        batch size, never on how many ids were distinct.
        """
        ids = _check_batch(block_ids, new_leaves)
        old = [self.lookup_and_update(block_id, int(leaf))
               for block_id, leaf in zip(ids, new_leaves)]
        for _ in range(max(0, pad_to - len(ids))):
            self.refresh(ids[0] if ids else 0)
        return old


class FlatPositionMap(PositionMap):
    """Leaf array protected by an oblivious full scan per lookup.

    Every lookup reads *and rewrites* all entries, blending the update in
    with a branch-free mask, so the touched addresses never depend on the
    queried block id.
    """

    def __init__(self, initial_leaves: np.ndarray,
                 tracer: Optional[MemoryTracer] = None,
                 region: str = "posmap") -> None:
        self.leaves = np.asarray(initial_leaves, dtype=np.int64).copy()
        check_positive("num_blocks", self.leaves.size)
        self.num_blocks = self.leaves.size
        self.tracer = tracer
        self.region = region
        self.ops = 0

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        old_leaf = 0
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(READ, self.region, index)
            match = ct_eq(index, block_id)
            old_leaf = ct_select(match, int(self.leaves[index]), old_leaf)
            updated = ct_select(match, new_leaf, int(self.leaves[index]))
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = updated
        self.ops += 2 * self.num_blocks
        return int(old_leaf)

    def refresh(self, block_id: int) -> None:
        """Dummy lookup: the same full read+rewrite scan, values unchanged."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(READ, self.region, index)
            entry = int(self.leaves[index])
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = entry
        self.ops += 2 * self.num_blocks

    def lookup(self, block_id: int) -> int:
        """Read a block's entry without changing it — same full R+W scan
        trace as :meth:`lookup_and_update`, so a scheme whose positions
        only change at shuffle time (square-root ORAM) stays trace-
        indistinguishable from one that remaps per access."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        value = 0
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(READ, self.region, index)
            entry = int(self.leaves[index])
            value = ct_select(ct_eq(index, block_id), entry, value)
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = entry
        self.ops += 2 * self.num_blocks
        return int(value)

    def rewrite(self, new_leaves: np.ndarray) -> None:
        """Install a whole new mapping in one data-independent write sweep
        (square-root ORAM's reshuffle replaces every entry at once)."""
        new_leaves = np.asarray(new_leaves, dtype=np.int64)
        if new_leaves.shape != (self.num_blocks,):
            raise ValueError(
                f"rewrite needs {self.num_blocks} entries, "
                f"got shape {new_leaves.shape}")
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = int(new_leaves[index])
        self.ops += self.num_blocks

    def work_ops(self) -> int:
        return self.ops

    def lookup_and_update_batch(self, block_ids: Sequence[int],
                                new_leaves: Sequence[int],
                                pad_to: int = 0) -> List[int]:
        """One oblivious pass for the whole batch (the LAORAM amortization).

        Every entry is read and rewritten exactly once no matter how many
        ids are queried, so a batch of B lookups costs ``2 * num_blocks``
        entry touches instead of ``2 * num_blocks * B`` — and the scan is
        already count-independent, so ``pad_to`` needs no extra traffic.
        """
        del pad_to
        ids = _check_batch(block_ids, new_leaves)
        for block_id in ids:
            if not 0 <= block_id < self.num_blocks:
                raise IndexError(f"block {block_id} out of range")
        targets = [int(leaf) for leaf in new_leaves]
        old = [0] * len(ids)
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(READ, self.region, index)
            entry = int(self.leaves[index])
            updated = entry
            for query, (block_id, target) in enumerate(zip(ids, targets)):
                match = ct_eq(index, block_id)
                old[query] = ct_select(match, entry, old[query])
                updated = ct_select(match, target, updated)
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = updated
        self.ops += 2 * self.num_blocks
        return [int(leaf) for leaf in old]


class OramPositionMap(PositionMap):
    """Recursive position map: leaf labels packed 16-per-block in a child ORAM.

    ``oram_factory(num_blocks, block_width, initial_payloads)`` builds the
    child ORAM preloaded with the packed labels. The caller passes the same
    ORAM class, so Path ORAM recurses into Path ORAM and Circuit into
    Circuit, matching ZeroTrace's construction.
    """

    def __init__(self, initial_leaves: np.ndarray,
                 oram_factory: Callable[[int, int, np.ndarray], "object"],
                 compression: int = POSMAP_COMPRESSION) -> None:
        initial_leaves = np.asarray(initial_leaves, dtype=np.int64)
        check_positive("num_blocks", initial_leaves.size)
        check_positive("compression", compression)
        self.num_blocks = initial_leaves.size
        self.compression = compression

        num_chunks = (self.num_blocks + compression - 1) // compression
        chunks = np.zeros((num_chunks, compression), dtype=np.float64)
        chunks.reshape(-1)[: self.num_blocks] = initial_leaves.astype(np.float64)
        self._child = oram_factory(num_chunks, compression, chunks)

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        chunk_id, offset = divmod(block_id, self.compression)
        captured = {}

        def update(chunk: np.ndarray) -> np.ndarray:
            # Oblivious in-chunk select/update: every lane participates.
            old_leaf = 0
            updated = chunk.copy()
            for lane in range(self.compression):
                match = ct_eq(lane, offset)
                old_leaf = ct_select(match, int(chunk[lane]), old_leaf)
                updated[lane] = ct_select(match, float(new_leaf), float(chunk[lane]))
            captured["old_leaf"] = int(old_leaf)
            return updated

        self._child.access(chunk_id, update)
        return captured["old_leaf"]

    def refresh(self, block_id: int) -> None:
        """Dummy lookup: one child-ORAM access with an identity update."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        chunk_id, _ = divmod(block_id, self.compression)
        self._child.access(chunk_id, lambda chunk: chunk)

    def work_ops(self) -> int:
        """Bucket I/O of the child ORAM — the map's memory operations."""
        return int(self._child.stats.bucket_reads
                   + self._child.stats.bucket_writes)
