"""Position maps: flat (oblivious linear scan) and recursive (ORAM-backed).

ZeroTrace protects its position map either by scanning it linearly with
``cmov`` (small maps) or, above a recursion cutoff, by storing it inside a
smaller ORAM whose own map recurses again — with a 16x compression factor
per level (each recursive block packs 16 leaf labels), as in §V-A1.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.oblivious.primitives import ct_eq, ct_select
from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.utils.validation import check_positive

POSMAP_COMPRESSION = 16


class PositionMap:
    """Interface: look up a block's leaf while installing its new leaf."""

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        raise NotImplementedError


class FlatPositionMap(PositionMap):
    """Leaf array protected by an oblivious full scan per lookup.

    Every lookup reads *and rewrites* all entries, blending the update in
    with a branch-free mask, so the touched addresses never depend on the
    queried block id.
    """

    def __init__(self, initial_leaves: np.ndarray,
                 tracer: Optional[MemoryTracer] = None,
                 region: str = "posmap") -> None:
        self.leaves = np.asarray(initial_leaves, dtype=np.int64).copy()
        check_positive("num_blocks", self.leaves.size)
        self.num_blocks = self.leaves.size
        self.tracer = tracer
        self.region = region

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        old_leaf = 0
        for index in range(self.num_blocks):
            if self.tracer is not None:
                self.tracer.record(READ, self.region, index)
            match = ct_eq(index, block_id)
            old_leaf = ct_select(match, int(self.leaves[index]), old_leaf)
            updated = ct_select(match, new_leaf, int(self.leaves[index]))
            if self.tracer is not None:
                self.tracer.record(WRITE, self.region, index)
            self.leaves[index] = updated
        return int(old_leaf)


class OramPositionMap(PositionMap):
    """Recursive position map: leaf labels packed 16-per-block in a child ORAM.

    ``oram_factory(num_blocks, block_width, initial_payloads)`` builds the
    child ORAM preloaded with the packed labels. The caller passes the same
    ORAM class, so Path ORAM recurses into Path ORAM and Circuit into
    Circuit, matching ZeroTrace's construction.
    """

    def __init__(self, initial_leaves: np.ndarray,
                 oram_factory: Callable[[int, int, np.ndarray], "object"],
                 compression: int = POSMAP_COMPRESSION) -> None:
        initial_leaves = np.asarray(initial_leaves, dtype=np.int64)
        check_positive("num_blocks", initial_leaves.size)
        check_positive("compression", compression)
        self.num_blocks = initial_leaves.size
        self.compression = compression

        num_chunks = (self.num_blocks + compression - 1) // compression
        chunks = np.zeros((num_chunks, compression), dtype=np.float64)
        chunks.reshape(-1)[: self.num_blocks] = initial_leaves.astype(np.float64)
        self._child = oram_factory(num_chunks, compression, chunks)

    def lookup_and_update(self, block_id: int, new_leaf: int) -> int:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range")
        chunk_id, offset = divmod(block_id, self.compression)
        captured = {}

        def update(chunk: np.ndarray) -> np.ndarray:
            # Oblivious in-chunk select/update: every lane participates.
            old_leaf = 0
            updated = chunk.copy()
            for lane in range(self.compression):
                match = ct_eq(lane, offset)
                old_leaf = ct_select(match, int(chunk[lane]), old_leaf)
                updated[lane] = ct_select(match, float(new_leaf), float(chunk[lane]))
            captured["old_leaf"] = int(old_leaf)
            return updated

        self._child.access(chunk_id, update)
        return captured["old_leaf"]
