"""Square-root ORAM (Goldreich–Ostrovsky, OTRO-style) for small hot tables.

The tree ORAMs in this package pay a log-depth path per access; the
square-root construction instead pays a constant-size scan per access and
amortises a full reshuffle every √n accesses — the right trade for small,
extremely hot tables such as a tokenizer vocabulary (OTRO applies exactly
this scheme to close the token-boundary leak upstream of the model).

Layout: the n real blocks plus m = ⌈√n⌉ dummy blocks live in one
*permuted store*; a client-side **shelter** of m slots (the standing
:class:`~repro.oram.stash.Stash`, scanned obliviously) holds every block
touched since the last shuffle. One access is always the same five moves:

1. position-map scan (``FlatPositionMap.lookup`` — full R+W sweep);
2. shelter scan (:meth:`Stash.peek` — full read sweep);
3. exactly one store read — the block's permuted slot on a shelter miss,
   the next *unused dummy* slot on a hit;
4. one shelter write sweep (add on miss, in-place update on hit);
5. after m accesses: a full reshuffle (read sweep → fresh permutation →
   write sweep), shelter folded back in, position map rewritten.

Why this is oblivious: steps 1, 2, 4 and 5 touch fixed address sets in a
fixed order, and step 3 reveals each permuted slot **at most once per
period** — a fresh uniform sample under the secret permutation, whatever
the logical access sequence. The per-access (op, region) sequence is a
constant, so the memory trace audits in *structural* mode like the tree
schemes, while decision traces layered on top (the tokenizer's) audit
exact. ``SUPPORTS_LOOKAHEAD`` stays False: batched access falls back to
the sequential loop through the standing ``oram.lookahead`` decision
trace, value-identical to per-access calls (pinned next to Ring's
fallback test).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.oram.controller import AccessStats, OramController, UpdateFn
from repro.oram.position_map import FlatPositionMap
from repro.oram.stash import Stash
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


class SqrtORAM(OramController):
    """Permuted store + oblivious shelter + periodic reshuffle."""

    SUPPORTS_LOOKAHEAD = False

    def __init__(self, num_blocks: int, block_width: int,
                 initial_payloads: Optional[np.ndarray] = None,
                 stash_capacity: Optional[int] = None,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None,
                 region_prefix: str = "") -> None:
        # Deliberately does NOT call the tree-based ``super().__init__``:
        # there is no bucket tree. Only the controller contract is kept —
        # stats/stash/tracer/rng attributes, ``access``'s telemetry shape,
        # and the sequential ``access_batch`` fallback.
        check_positive("num_blocks", num_blocks)
        check_positive("block_width", block_width)
        self.num_blocks = num_blocks
        self.block_width = block_width
        self.rng = new_rng(rng)
        self.tracer = tracer
        self.stats = AccessStats()
        self.overflow_callback = None

        prefix = region_prefix or "sqrtoram"
        self.store_region = f"{prefix}.store"
        #: dummy count == shelter period == ⌈√n⌉ (the classic sizing)
        self.num_dummies = int(math.ceil(math.sqrt(num_blocks)))
        self.period = self.num_dummies
        # The shelter holds at most one block per access between shuffles,
        # so ⌈√n⌉ persistent slots suffice; a caller-supplied bound only
        # ever grows it (matching the tree controllers' constructor).
        self.persistent_stash_capacity = max(self.num_dummies,
                                             stash_capacity or 0)
        self.stash = Stash(self.persistent_stash_capacity, block_width,
                           tracer=tracer, region=f"{prefix}.shelter")

        if initial_payloads is None:
            initial_payloads = np.zeros((num_blocks, block_width))
        initial_payloads = np.asarray(initial_payloads, dtype=np.float64)
        if initial_payloads.shape != (num_blocks, block_width):
            raise ValueError(
                f"initial payloads shape {initial_payloads.shape} != "
                f"({num_blocks}, {block_width})")
        total = num_blocks + self.num_dummies
        #: permutation: logical index (block id, or n+k for dummy k) → slot
        self._perm = self.rng.permutation(total).astype(np.int64)
        self._store = np.zeros((total, block_width), dtype=np.float64)
        self._store[self._perm[:num_blocks]] = initial_payloads
        self.position_map = FlatPositionMap(
            self._perm[:num_blocks], tracer=tracer,
            region=f"{prefix}.posmap")
        self._next_dummy = 0
        self._accesses_in_period = 0

    # ------------------------------------------------------------------
    # Store I/O (the addresses the attacker sees)
    # ------------------------------------------------------------------
    def _read_store(self, slot: int) -> np.ndarray:
        if self.tracer is not None:
            self.tracer.record(READ, self.store_region, slot)
        self.stats.bucket_reads += 1
        return self._store[slot].copy()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, block_id: int,
               update_fn: Optional[UpdateFn] = None) -> np.ndarray:
        """One square-root ORAM access; returns the pre-update payload."""
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(
                f"block {block_id} out of range for ORAM of "
                f"{self.num_blocks} blocks")
        registry = get_registry()
        reads_before = self.stats.bucket_reads
        writes_before = self.stats.bucket_writes
        evictions_before = self.stats.eviction_passes
        try:
            with registry.span("oram.access", scheme=type(self).__name__,
                               level=0):
                result = self._sqrt_access(block_id, update_fn)
        finally:
            registry.counter("oram.accesses_total").inc()
            registry.counter("oram.bucket_reads_total").inc(
                self.stats.bucket_reads - reads_before)
            registry.counter("oram.bucket_writes_total").inc(
                self.stats.bucket_writes - writes_before)
            registry.counter("oram.eviction_passes_total").inc(
                self.stats.eviction_passes - evictions_before)
            registry.gauge("oram.stash_occupancy").set(self.stash.occupancy)
            registry.gauge("oram.stash_peak_occupancy").set_max(
                self.stash.peak_occupancy)
        return result

    def _sqrt_access(self, block_id: int,
                     update_fn: Optional[UpdateFn]) -> np.ndarray:
        slot = self.position_map.lookup(block_id)
        held = self.stash.peek(block_id)
        if held is None:
            fetch_slot = slot
        else:
            # Already sheltered: burn the next unused dummy slot so the
            # store still sees exactly one fresh read.
            fetch_slot = int(self._perm[self.num_blocks + self._next_dummy])
            self._next_dummy += 1
        fetched = self._read_store(fetch_slot)
        value = fetched if held is None else held[1]
        result = value.copy()
        if update_fn is not None:
            value = np.asarray(update_fn(value.copy()), dtype=np.float64)
            if value.shape != (self.block_width,):
                raise ValueError(
                    f"update_fn returned shape {value.shape} != "
                    f"({self.block_width},)")
        if held is None:
            self.stash.add(block_id, slot, value)
        else:
            self.stash.update(block_id, leaf=slot, payload=value)
        self.stats.accesses += 1
        self.stats.revealed_leaves.append(fetch_slot)
        self._accesses_in_period += 1
        self._check_stash_bound()
        if self._accesses_in_period >= self.period:
            self._reshuffle()
        return result

    # ------------------------------------------------------------------
    # Reshuffle (every ⌈√n⌉ accesses — a pure function of access count)
    # ------------------------------------------------------------------
    def _reshuffle(self) -> None:
        """Full read sweep → fresh permutation → full write sweep.

        The shelter's copies win over the store's stale ones; afterwards
        the shelter is empty, the dummy counter resets, and the position
        map is rewritten in one data-independent sweep.
        """
        total = self.num_blocks + self.num_dummies
        contents = np.zeros((self.num_blocks, self.block_width))
        for slot in range(total):
            if self.tracer is not None:
                self.tracer.record(READ, self.store_region, slot)
        self.stats.bucket_reads += total
        contents[:] = self._store[self._perm[:self.num_blocks]]
        for block_id, _leaf, payload in self.stash.evict_matching(
                lambda leaf: True):
            contents[block_id] = payload
        self._perm = self.rng.permutation(total).astype(np.int64)
        new_store = np.zeros_like(self._store)
        new_store[self._perm[:self.num_blocks]] = contents
        for slot in range(total):
            if self.tracer is not None:
                self.tracer.record(WRITE, self.store_region, slot)
        self.stats.bucket_writes += total
        self._store = new_store
        self.position_map.rewrite(self._perm[:self.num_blocks])
        self._next_dummy = 0
        self._accesses_in_period = 0
        self.stats.eviction_passes += 1
        get_registry().counter("oram.reshuffles_total").inc()

    # ------------------------------------------------------------------
    # Controller-contract overrides that assumed a bucket tree
    # ------------------------------------------------------------------
    def background_evict(self, passes: int = 1) -> int:
        """Reshuffle early — the square-root analogue of an eviction pass.

        The shuffle point moves, but only as a function of *when* the
        caller asked, never of which blocks are resident, so the schedule
        stays secret-independent. One shuffle empties the shelter
        entirely; extra passes are no-ops on occupancy.
        """
        check_positive("passes", passes)
        registry = get_registry()
        with registry.span("oram.background_evict", passes=passes,
                           scheme=type(self).__name__):
            self._reshuffle()
        registry.counter("oram.background_evictions_total").inc(passes)
        registry.gauge("oram.stash_occupancy").set(self.stash.occupancy)
        return self.stash.occupancy

    def total_resident_blocks(self) -> int:
        return self.num_blocks

    def memory_blocks(self) -> int:
        """Physical slots: permuted store (n + ⌈√n⌉ dummies) + shelter."""
        return int(self._store.shape[0]) + self.stash.capacity

    @property
    def levels(self) -> int:
        """No tree: depth 0 (kept so generic introspection doesn't trip)."""
        return 0
