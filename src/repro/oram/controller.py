"""Shared controller machinery for the tree-based ORAMs (§IV-A2).

Both Path ORAM and Circuit ORAM subclass :class:`OramController`, which owns
the bucket tree, the stash, the (possibly recursive) position map, access
statistics, and the public ``read``/``write``/``access`` API. Subclasses
implement :meth:`_access_impl`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.oblivious.trace import MemoryTracer
from repro.oram.position_map import FlatPositionMap, OramPositionMap, PositionMap
from repro.oram.stash import Stash, StashOverflowError
from repro.oram.tree import BucketTree
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive

UpdateFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class AccessStats:
    """Counters describing the work done by the ORAM so far."""

    accesses: int = 0
    bucket_reads: int = 0
    bucket_writes: int = 0
    eviction_passes: int = 0
    stash_overflows: int = 0
    revealed_leaves: list = field(default_factory=list)

    def blocks_touched(self, bucket_size: int) -> int:
        return (self.bucket_reads + self.bucket_writes) * bucket_size

    def reset(self) -> None:
        self.accesses = 0
        self.bucket_reads = 0
        self.bucket_writes = 0
        self.eviction_passes = 0
        self.stash_overflows = 0
        self.revealed_leaves.clear()


class OramController:
    """Base class: tree + stash + position map + statistics."""

    #: subclass-specific defaults (paper §V-A1 / ZeroTrace configuration)
    DEFAULT_STASH = 150
    DEFAULT_RECURSION_CUTOFF = 1 << 16
    #: schemes with a batched lookahead mode (see repro.oram.lookahead)
    SUPPORTS_LOOKAHEAD = False

    def __init__(self, num_blocks: int, block_width: int,
                 initial_payloads: Optional[np.ndarray] = None,
                 bucket_size: int = 4,
                 stash_capacity: Optional[int] = None,
                 recursion_cutoff: Optional[int] = None,
                 pack_factor: int = 1,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None,
                 region_prefix: str = "",
                 _recursion_level: int = 0) -> None:
        check_positive("num_blocks", num_blocks)
        check_positive("block_width", block_width)
        check_positive("pack_factor", pack_factor)
        if pack_factor > bucket_size:
            raise ValueError(
                f"pack_factor {pack_factor} cannot exceed bucket_size "
                f"{bucket_size} (the tree could not hold all blocks)")
        self.num_blocks = num_blocks
        self.block_width = block_width
        self.bucket_size = bucket_size
        # pack_factor > 1 shrinks the tree toward ZeroTrace's sizing
        # (leaves ~ n/Z): smaller memory, higher utilisation, more stash
        # pressure. pack_factor = 1 is the classic one-leaf-per-block tree.
        self.pack_factor = pack_factor
        self.rng = new_rng(rng)
        self.tracer = tracer
        self.stats = AccessStats()
        #: optional hook fired (with this controller) just before a
        #: StashOverflowError propagates — the resilience layer's overflow
        #: signal for triggering background eviction / degradation.
        self.overflow_callback: Optional[Callable[["OramController"], None]] = None
        self.recursion_cutoff = (recursion_cutoff if recursion_cutoff is not None
                                 else self.DEFAULT_RECURSION_CUTOFF)
        self._recursion_level = _recursion_level

        prefix = region_prefix or self.__class__.__name__.lower()
        sized_blocks = (num_blocks + pack_factor - 1) // pack_factor
        self.tree = BucketTree(sized_blocks, block_width,
                               bucket_size=bucket_size, tracer=tracer,
                               region=f"{prefix}.tree{_recursion_level}")
        # The configured stash bound counts blocks resident *between* accesses
        # (ZeroTrace convention); during an access up to a full path of blocks
        # is transiently held as well, so the physical buffer is sized for both.
        self.persistent_stash_capacity = stash_capacity or self.DEFAULT_STASH
        transient = bucket_size * (self.tree.levels + 1)
        self.stash = Stash(self.persistent_stash_capacity + transient, block_width,
                           tracer=tracer, region=f"{prefix}.stash{_recursion_level}")

        initial_leaves = self.rng.integers(0, self.tree.num_leaves,
                                           size=num_blocks, dtype=np.int64)
        self.position_map = self._build_position_map(initial_leaves, prefix)
        self._load(initial_payloads, initial_leaves)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_position_map(self, initial_leaves: np.ndarray,
                            prefix: str) -> PositionMap:
        if self.num_blocks <= self.recursion_cutoff:
            return FlatPositionMap(
                initial_leaves, tracer=self.tracer,
                region=f"{prefix}.posmap{self._recursion_level}")

        def factory(num_chunks: int, width: int,
                    payloads: np.ndarray) -> "OramController":
            return type(self)(
                num_chunks, width, initial_payloads=payloads,
                bucket_size=self.bucket_size,
                recursion_cutoff=self.recursion_cutoff,
                rng=self.rng, tracer=self.tracer, region_prefix=prefix,
                _recursion_level=self._recursion_level + 1)

        return OramPositionMap(initial_leaves, factory)

    def _load(self, payloads: Optional[np.ndarray],
              leaves: np.ndarray) -> None:
        if payloads is None:
            payloads = np.zeros((self.num_blocks, self.block_width))
        payloads = np.asarray(payloads, dtype=np.float64)
        if payloads.shape != (self.num_blocks, self.block_width):
            raise ValueError(
                f"initial payloads shape {payloads.shape} != "
                f"({self.num_blocks}, {self.block_width})")
        for block_id in range(self.num_blocks):
            leaf = int(leaves[block_id])
            if not self.tree.place_initial(block_id, leaf, payloads[block_id]):
                self.stash.add(block_id, leaf, payloads[block_id])

    def load_blocks(self, payloads: np.ndarray) -> None:
        """Bulk-overwrite all block payloads (offline, data-independent)."""
        payloads = np.asarray(payloads, dtype=np.float64)
        if payloads.shape != (self.num_blocks, self.block_width):
            raise ValueError(
                f"payload shape {payloads.shape} != "
                f"({self.num_blocks}, {self.block_width})")
        for block_id in range(self.num_blocks):
            self.write(block_id, payloads[block_id])

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(self, block_id: int, update_fn: Optional[UpdateFn] = None) -> np.ndarray:
        """One ORAM access: fetch ``block_id``, optionally update, remap.

        Returns the payload *before* ``update_fn`` was applied.
        """
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(
                f"block {block_id} out of range for ORAM of {self.num_blocks} blocks")
        registry = get_registry()
        reads_before = self.stats.bucket_reads
        writes_before = self.stats.bucket_writes
        evictions_before = self.stats.eviction_passes
        try:
            with registry.span("oram.access", scheme=type(self).__name__,
                               level=self._recursion_level):
                new_leaf = int(self.rng.integers(0, self.tree.num_leaves))
                old_leaf = self.position_map.lookup_and_update(block_id, new_leaf)
                self.stats.accesses += 1
                self.stats.revealed_leaves.append(old_leaf)
                result = self._access_impl(block_id, old_leaf, new_leaf,
                                           update_fn)
        finally:
            # Flush work counters and stash gauges even when the access
            # raises (e.g. StashOverflowError) so monitoring sees the state
            # that caused the failure, not the state before it.
            registry.counter("oram.accesses_total").inc()
            registry.counter("oram.bucket_reads_total").inc(
                self.stats.bucket_reads - reads_before)
            registry.counter("oram.bucket_writes_total").inc(
                self.stats.bucket_writes - writes_before)
            registry.counter("oram.eviction_passes_total").inc(
                self.stats.eviction_passes - evictions_before)
            registry.gauge("oram.stash_occupancy").set(self.stash.occupancy)
            registry.gauge("oram.stash_peak_occupancy").set_max(
                self.stash.peak_occupancy)
        return result

    def access_batch(self, block_ids, update_fns=None,
                     plan_tracer: Optional[MemoryTracer] = None
                     ) -> np.ndarray:
        """Serve a whole batch of accesses known up front (LAORAM-style).

        Value-identical to looping :meth:`access` over the batch —
        duplicates return/update in arrival order with one shared fetch.
        Schemes with ``SUPPORTS_LOOKAHEAD`` share path fetches, fuse
        write-backs, and batch the position-map pass; others fall back to
        the sequential loop (no amortization, same semantics). Returns the
        pre-update payloads, shape ``(batch, block_width)``. The
        ``oram.lookahead`` decision trace is recorded to ``plan_tracer``
        (default: the controller's tracer).
        """
        from repro.oram import lookahead

        if self.SUPPORTS_LOOKAHEAD:
            return lookahead.lookahead_access_batch(
                self, block_ids, update_fns, plan_tracer)
        ids = list(block_ids)
        if update_fns is None:
            update_fns = [None] * len(ids)
        elif len(update_fns) != len(ids):
            raise ValueError(
                f"{len(ids)} block ids but {len(update_fns)} update fns")
        if not ids:
            return np.zeros((0, self.block_width))
        tracer = plan_tracer if plan_tracer is not None else self.tracer
        results = []
        for slot, block_id in enumerate(ids):
            if tracer is not None:
                tracer.record("R", lookahead.LOOKAHEAD_REGION,
                              lookahead.ADDR_FETCH + slot)
            results.append(self.access(int(block_id), update_fns[slot]))
        return np.stack(results)

    def position_map_ops(self) -> int:
        """Memory operations spent in the position map so far — the work
        the batched lookahead pass amortizes across a batch."""
        return self.position_map.work_ops()

    def read(self, block_id: int) -> np.ndarray:
        return self.access(block_id)

    def write(self, block_id: int, payload: np.ndarray) -> None:
        payload = np.asarray(payload, dtype=np.float64)
        if payload.shape != (self.block_width,):
            raise ValueError(
                f"payload shape {payload.shape} != ({self.block_width},)")
        self.access(block_id, lambda _old: payload)

    # ------------------------------------------------------------------
    # Stash-pressure handling: the overflow signal and background eviction
    # ------------------------------------------------------------------
    def _check_stash_bound(self) -> None:
        """Enforce the persistent stash bound; raise with the signal fired.

        The bound counts blocks resident *between* accesses. On violation
        the overflow is counted (``stats.stash_overflows`` and the
        ``oram.stash_overflows_total`` telemetry counter), the optional
        ``overflow_callback`` runs, and StashOverflowError propagates — the
        caller decides between :meth:`background_evict` recovery and
        degradation.
        """
        occupancy = self.stash.occupancy
        if occupancy <= self.persistent_stash_capacity:
            return
        self.stats.stash_overflows += 1
        get_registry().counter("oram.stash_overflows_total").inc()
        if self.overflow_callback is not None:
            self.overflow_callback(self)
        raise StashOverflowError(
            f"stash occupancy {occupancy} exceeds the configured "
            f"bound {self.persistent_stash_capacity}")

    def background_evict(self, passes: int = 1) -> int:
        """Drain stash pressure without serving a request (LAORAM-style).

        Runs ``passes`` eviction passes along random paths. The paths are
        drawn from the controller's own RNG — independent of any block
        identity — so background eviction is as access-pattern-oblivious as
        a regular access. Returns the stash occupancy afterwards.
        """
        check_positive("passes", passes)
        registry = get_registry()
        with registry.span("oram.background_evict", passes=passes,
                           scheme=type(self).__name__):
            for _ in range(passes):
                leaf = int(self.rng.integers(0, self.tree.num_leaves))
                self._background_evict_pass(leaf)
                self.stats.eviction_passes += 1
        registry.counter("oram.background_evictions_total").inc(passes)
        registry.gauge("oram.stash_occupancy").set(self.stash.occupancy)
        registry.gauge("oram.stash_peak_occupancy").set_max(
            self.stash.peak_occupancy)
        return self.stash.occupancy

    def _background_evict_pass(self, leaf: int) -> None:
        """One request-free eviction pass along the path to ``leaf``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Subclass hook
    # ------------------------------------------------------------------
    def _access_impl(self, block_id: int, old_leaf: int, new_leaf: int,
                     update_fn: Optional[UpdateFn]) -> np.ndarray:
        raise NotImplementedError

    # Batched lookahead hooks (schemes with SUPPORTS_LOOKAHEAD implement
    # these; see repro.oram.lookahead for the orchestration).
    def _lookahead_reserve(self, plan) -> None:
        """Grow the physical stash for the batch (public sizing decision)."""
        raise NotImplementedError

    def _lookahead_fetch(self, plan) -> None:
        """Fetch every scheduled bucket once, staging blocks in the stash."""
        raise NotImplementedError

    def _lookahead_writeback(self, plan) -> int:
        """Fused write-back/eviction; returns the number of write-back
        units for the decision trace."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        return self.tree.levels

    def total_resident_blocks(self) -> int:
        return self.tree.occupancy() + self.stash.occupancy

    def memory_blocks(self) -> int:
        """Physical block slots allocated (tree + stash), incl. recursion."""
        own = self.tree.num_buckets * self.bucket_size + self.stash.capacity
        child = getattr(self.position_map, "_child", None)
        if child is not None:
            own += child.memory_blocks()
        return own
