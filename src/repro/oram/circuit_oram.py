"""Circuit ORAM (Wang, Chan, Shi), as configured by ZeroTrace/§V-A1.

Differences from Path ORAM that the paper leans on:

* the read path contributes only the *requested* block to the stash (not the
  whole path), so the stash stays ~15x smaller;
* eviction is metadata-driven: two deterministic reverse-lexicographic paths
  per access, each processed with the PrepareDeepest / PrepareTarget /
  EvictOnceFast single-sweep discipline, moving at most one block per level.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.oblivious.trace import READ, WRITE
from repro.oram.controller import OramController, UpdateFn
from repro.oram.tree import DUMMY

_NONE = -10**9  # sentinel for "no level" in the eviction metadata passes


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value`` (reverse-lex eviction order)."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class CircuitORAM(OramController):
    """Tree ORAM with single-block reads and two-pass linear eviction."""

    DEFAULT_STASH = 10            # paper: stash size 10 for Circuit ORAM
    DEFAULT_RECURSION_CUTOFF = 1 << 12  # paper: recursion beyond 2^12 blocks
    SUPPORTS_LOOKAHEAD = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._eviction_counter = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _access_impl(self, block_id: int, old_leaf: int, new_leaf: int,
                     update_fn: Optional[UpdateFn]) -> np.ndarray:
        payload = self._read_and_remove(block_id, old_leaf)
        result = payload.copy()
        if update_fn is not None:
            payload = np.asarray(update_fn(payload), dtype=np.float64)
        self.stash.add(block_id, new_leaf, payload)

        # Two deterministic evictions per access (reverse-lexicographic).
        for _ in range(2):
            self._deterministic_evict_pass()

        self._check_stash_bound()
        return result

    def _next_eviction_leaf(self) -> int:
        """Advance the deterministic reverse-lexicographic eviction order."""
        leaf = bit_reverse(self._eviction_counter % self.tree.num_leaves
                           if self.tree.num_leaves > 1 else 0,
                           self.tree.levels)
        self._eviction_counter += 1
        return leaf

    def _deterministic_evict_pass(self) -> None:
        """One reverse-lexicographic eviction pass (the per-access schedule)."""
        self._evict_once(self._next_eviction_leaf())
        self.stats.eviction_passes += 1

    def _background_evict_pass(self, leaf: int) -> None:
        """Request-free stash drain: continue the reverse-lex schedule.

        Circuit ORAM's eviction is metadata-driven and moves at most one
        block per level, so recovery from stash pressure simply runs extra
        passes of the same deterministic schedule (``leaf`` is ignored —
        the schedule, not randomness, picks the path; the base class does
        the ``eviction_passes`` accounting).
        """
        del leaf
        self._evict_once(self._next_eviction_leaf())

    def _read_and_remove(self, block_id: int, old_leaf: int) -> np.ndarray:
        """Sweep the read path once, extracting the requested block.

        Every bucket on the path is read and written back regardless of
        where the block actually lives (it may also be in the stash).
        """
        payload: Optional[np.ndarray] = None
        stash_hit = self.stash.remove(block_id)
        if stash_hit is not None:
            payload = stash_hit[1]
        for bucket in self.tree.path_indices(old_leaf):
            ids, leaves, payloads = self.tree.read_bucket(bucket)
            self.stats.bucket_reads += 1
            matches = np.nonzero(ids == block_id)[0]
            if matches.size:
                slot = int(matches[0])
                payload = payloads[slot].copy()
                ids[slot] = DUMMY
            self.tree.write_bucket(bucket, ids, leaves, payloads)
            self.stats.bucket_writes += 1
        if payload is None:
            raise KeyError(f"block {block_id} not found — ORAM invariant broken")
        return payload

    # ------------------------------------------------------------------
    # Batched lookahead hooks (see repro.oram.lookahead)
    # ------------------------------------------------------------------
    def _lookahead_reserve(self, plan) -> None:
        # The extracting fetch adds at most one block per unique id on top
        # of the usual transient path allowance.
        self.stash.grow(self.persistent_stash_capacity
                        + self.bucket_size * (self.tree.levels + 1)
                        + plan.batch_size)

    def _lookahead_fetch(self, plan) -> None:
        """One read+write sweep per scheduled bucket, extracting every
        requested block into the stash. Each of the Z slots costs one
        stash touch whether or not it is extracted, mirroring the
        slot-count-constant discipline of the Path ORAM fetch."""
        wanted = set(plan.unique_ids)
        for level in plan.schedule:
            for bucket in level:
                ids, leaves, payloads = self.tree.read_bucket(bucket)
                self.stats.bucket_reads += 1
                for slot in range(self.bucket_size):
                    slot_id = int(ids[slot])
                    if slot_id != DUMMY and slot_id in wanted:
                        self.stash.add(slot_id, int(leaves[slot]),
                                       payloads[slot])
                        ids[slot] = DUMMY
                    else:
                        self.stash._scan_trace(WRITE)
                self.tree.write_bucket(bucket, ids, leaves, payloads)
                self.stats.bucket_writes += 1

    def _lookahead_writeback(self, plan) -> int:
        """The per-access eviction budget, fused: two deterministic
        reverse-lexicographic passes per batched access, all run after the
        whole batch has been served."""
        passes = 2 * plan.batch_size
        for _ in range(passes):
            self._deterministic_evict_pass()
        return passes

    # ------------------------------------------------------------------
    # Eviction (PrepareDeepest / PrepareTarget / EvictOnceFast)
    # ------------------------------------------------------------------
    def _legal_depth(self, block_leaf: int, eviction_leaf: int) -> int:
        """Deepest tree level where a block with ``block_leaf`` may live."""
        return self.tree.common_depth(block_leaf, eviction_leaf)

    def _evict_once(self, eviction_leaf: int) -> None:
        path = self.tree.path_indices(eviction_leaf)
        depth_levels = len(path)            # tree levels 0..L
        total = depth_levels + 1            # +1: index 0 is the stash

        # -- metadata scan (one read sweep) --------------------------------
        # For each position i (0 = stash, i>=1 = tree level i-1): the deepest
        # legal level-index any resident block can reach on this path.
        bucket_meta: List[tuple] = []
        deepest_block_goal = [_NONE] * total
        stash_blocks = self.stash.resident_blocks()
        if stash_blocks:
            deepest_block_goal[0] = max(
                self._legal_depth(leaf, eviction_leaf) + 1
                for _, leaf, _ in stash_blocks)
        for i in range(1, total):
            ids, leaves = self.tree.read_bucket_metadata(path[i - 1])
            self.stats.bucket_reads += 1
            bucket_meta.append((ids, leaves))
            real = np.nonzero(ids != DUMMY)[0]
            if real.size:
                deepest_block_goal[i] = max(
                    self._legal_depth(int(leaves[slot]), eviction_leaf) + 1
                    for slot in real)

        # -- PrepareDeepest -------------------------------------------------
        deepest = [_NONE] * total  # deepest[i]: source position feeding level i
        src, goal = _NONE, _NONE
        if deepest_block_goal[0] != _NONE:
            src, goal = 0, deepest_block_goal[0]
        for i in range(1, total):
            if goal >= i:
                deepest[i] = src
            if deepest_block_goal[i] > goal:
                goal = deepest_block_goal[i]
                src = i

        # -- PrepareTarget ----------------------------------------------
        target = [_NONE] * total
        dest, src = _NONE, _NONE
        for i in range(total - 1, -1, -1):
            if i == src:
                target[i] = dest
                dest, src = _NONE, _NONE
            has_empty = (i >= 1 and
                         bool((bucket_meta[i - 1][0] == DUMMY).any()))
            if ((dest == _NONE and has_empty) or target[i] != _NONE) \
                    and deepest[i] != _NONE:
                src = deepest[i]
                dest = i

        # -- EvictOnceFast (one write sweep) ------------------------------
        hold_block = None   # (id, leaf, payload)
        hold_dest = _NONE
        for i in range(total):
            to_write = None
            if hold_block is not None and i == hold_dest:
                to_write = hold_block
                hold_block, hold_dest = None, _NONE
            if i == 0:
                if target[0] != _NONE:
                    hold_block = self._take_deepest_from_stash(eviction_leaf)
                    hold_dest = target[0]
                else:
                    # Dummy take: the same two oblivious scans as a real
                    # take, so the eviction's stash traffic is pass-count
                    # constant regardless of whether the stash feeds the
                    # path this round.
                    self.stash._scan_trace(READ)
                    self.stash._scan_trace(READ)
                continue
            bucket = path[i - 1]
            ids, leaves, payloads = self.tree.read_bucket(bucket)
            self.stats.bucket_reads += 1
            if target[i] != _NONE:
                slot = self._deepest_slot(ids, leaves, eviction_leaf)
                hold_block = (int(ids[slot]), int(leaves[slot]),
                              payloads[slot].copy())
                hold_dest = target[i]
                ids[slot] = DUMMY
            if to_write is not None:
                free = np.nonzero(ids == DUMMY)[0]
                slot = int(free[0])
                ids[slot], leaves[slot] = to_write[0], to_write[1]
                payloads[slot] = to_write[2]
            self.tree.write_bucket(bucket, ids, leaves, payloads)
            self.stats.bucket_writes += 1

    def _take_deepest_from_stash(self, eviction_leaf: int):
        """Remove the stash block that can sink deepest on the eviction path."""
        blocks = self.stash.resident_blocks()
        best = max(blocks,
                   key=lambda blk: self._legal_depth(blk[1], eviction_leaf))
        self.stash.remove(best[0])
        return best

    def _deepest_slot(self, ids: np.ndarray, leaves: np.ndarray,
                      eviction_leaf: int) -> int:
        """Slot index of the bucket block that can sink deepest."""
        real = np.nonzero(ids != DUMMY)[0]
        return int(max(real, key=lambda slot: self._legal_depth(
            int(leaves[slot]), eviction_leaf)))
