"""Path ORAM (Stefanov et al.), as configured by ZeroTrace/§V-A1.

Every access fetches the whole path assigned to the block into the stash,
returns the block (remapped to a fresh random leaf), then writes the path
back greedily from the leaf upward, pushing stash blocks as deep as their
assigned leaves allow.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.oblivious.trace import WRITE
from repro.oram import lookahead
from repro.oram.controller import OramController, UpdateFn
from repro.oram.tree import DUMMY


class PathORAM(OramController):
    """Tree ORAM with full-path read/writeback per access."""

    DEFAULT_STASH = 150           # paper: stash size 150 for Path ORAM
    DEFAULT_RECURSION_CUTOFF = 1 << 16  # paper: recursion beyond 2^16 blocks
    SUPPORTS_LOOKAHEAD = True

    def _access_impl(self, block_id: int, old_leaf: int, new_leaf: int,
                     update_fn: Optional[UpdateFn]) -> np.ndarray:
        path = self.tree.path_indices(old_leaf)

        # 1. Fetch the entire path into the stash.
        self._fetch_path_into_stash(path)

        # 2. The requested block must now be in the stash.
        found = self.stash.remove(block_id)
        if found is None:
            raise KeyError(f"block {block_id} not found — ORAM invariant broken")
        _, payload = found
        result = payload.copy()
        if update_fn is not None:
            payload = np.asarray(update_fn(payload), dtype=np.float64)
        self.stash.add(block_id, new_leaf, payload)

        # 3. Write the path back greedily.
        self._writeback_path(path, old_leaf)

        self._check_stash_bound()
        return result

    # ------------------------------------------------------------------
    # Path fetch / writeback (shared by access and background eviction)
    # ------------------------------------------------------------------
    def _fetch_path_into_stash(self, path: Sequence[int]) -> None:
        """Pull every block on ``path`` into the stash, emptying the buckets.

        Every slot is processed (dummies included) so stash traffic is
        slot-count constant.
        """
        for bucket in path:
            ids, leaves, payloads = self.tree.read_bucket(bucket)
            self.stats.bucket_reads += 1
            for slot in range(self.bucket_size):
                slot_id = int(ids[slot])
                if slot_id != DUMMY:
                    self.stash.add(slot_id, int(leaves[slot]), payloads[slot])
                else:
                    # Dummy slot: same oblivious scan, no insertion.
                    self.stash._scan_trace(WRITE)
            # Bucket is now logically empty; writeback repopulates it.
            self.tree.write_bucket(
                bucket,
                np.full(self.bucket_size, DUMMY, dtype=np.int64),
                np.zeros(self.bucket_size, dtype=np.int64),
                np.zeros((self.bucket_size, self.block_width)))
            self.stats.bucket_writes += 1

    def _writeback_path(self, path: Sequence[int], anchor_leaf: int) -> None:
        """Write ``path`` back, deepest bucket first, greedily draining the
        stash of blocks whose assigned path intersects each level."""
        for depth in range(self.tree.levels, -1, -1):
            bucket = path[depth]
            eligible = self.stash.evict_matching(
                lambda leaf, d=depth:
                self.tree.common_depth(leaf, anchor_leaf) >= d)
            chosen = eligible[: self.bucket_size]
            for extra in eligible[self.bucket_size:]:
                self.stash.add(*extra)  # return overflow to the stash
            ids = np.full(self.bucket_size, DUMMY, dtype=np.int64)
            leaves = np.zeros(self.bucket_size, dtype=np.int64)
            payloads = np.zeros((self.bucket_size, self.block_width))
            for slot, (bid, bleaf, bpayload) in enumerate(chosen):
                ids[slot] = bid
                leaves[slot] = bleaf
                payloads[slot] = bpayload
            self.tree.write_bucket(bucket, ids, leaves, payloads)
            self.stats.bucket_writes += 1

    # ------------------------------------------------------------------
    # Batched lookahead hooks (see repro.oram.lookahead)
    # ------------------------------------------------------------------
    def _lookahead_reserve(self, plan) -> None:
        # The shared fetch empties every scheduled bucket into the stash,
        # so the physical buffer must transiently hold a whole batch's
        # union of paths — a pure function of batch size and tree depth.
        self.stash.grow(self.persistent_stash_capacity
                        + self.bucket_size * plan.num_fetched_buckets)

    def _lookahead_fetch(self, plan) -> None:
        # Same discipline as a single-path fetch, over the level-padded
        # union schedule: every scheduled bucket is read exactly once.
        self._fetch_path_into_stash(
            [bucket for level in plan.schedule for bucket in level])

    def _lookahead_writeback(self, plan) -> int:
        """Fused greedy write-back: one deepest-first sweep over the
        schedule, each bucket written exactly once, one stash scan per
        bucket (:meth:`~repro.oram.stash.Stash.take_matching` keeps the
        scan count overflow-independent)."""
        levels = self.tree.levels
        for level in range(levels, -1, -1):
            for bucket in plan.schedule[level]:
                chosen = self.stash.take_matching(
                    lambda leaf, lvl=level, target=bucket:
                    lookahead.bucket_at(leaf, lvl, levels) == target,
                    self.bucket_size)
                ids = np.full(self.bucket_size, DUMMY, dtype=np.int64)
                leaves = np.zeros(self.bucket_size, dtype=np.int64)
                payloads = np.zeros((self.bucket_size, self.block_width))
                for slot, (bid, bleaf, bpayload) in enumerate(chosen):
                    ids[slot] = bid
                    leaves[slot] = bleaf
                    payloads[slot] = bpayload
                self.tree.write_bucket(bucket, ids, leaves, payloads)
                self.stats.bucket_writes += 1
        return plan.num_fetched_buckets

    # ------------------------------------------------------------------
    # Background eviction (stash-pressure recovery)
    # ------------------------------------------------------------------
    def _background_evict_pass(self, leaf: int) -> None:
        """Fetch + greedily write back one random path, no block served.

        The same fetch/writeback discipline as an access, minus the block
        removal and remap: stash blocks whose paths intersect the eviction
        path sink back into the tree, relieving stash pressure.
        """
        path = self.tree.path_indices(leaf)
        self._fetch_path_into_stash(path)
        self._writeback_path(path, leaf)
