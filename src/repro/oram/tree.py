"""Binary-tree bucket storage shared by Path ORAM and Circuit ORAM.

The tree is a complete binary tree of buckets in heap order (root at index
0, children of ``i`` at ``2i+1``/``2i+2``); each bucket holds ``Z`` block
slots. A slot stores a block id (``DUMMY`` when empty), the block's assigned
leaf, and its payload row. Bucket-granularity reads/writes are reported to a
:class:`~repro.oblivious.trace.MemoryTracer` under the region name given at
construction — these are exactly the addresses an attacker observes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.utils.validation import check_positive

DUMMY = -1


def tree_levels_for(num_blocks: int) -> int:
    """Number of levels L such that the tree has ``2**L >= num_blocks`` leaves.

    This matches the usual Path ORAM sizing where the leaf count is at least
    the block count (so each leaf path is lightly loaded).
    """
    check_positive("num_blocks", num_blocks)
    levels = 0
    while (1 << levels) < num_blocks:
        levels += 1
    return levels


class BucketTree:
    """Array-backed complete binary tree of Z-slot buckets."""

    def __init__(self, num_blocks: int, block_width: int, bucket_size: int = 4,
                 tracer: Optional[MemoryTracer] = None, region: str = "tree",
                 dtype=np.float64) -> None:
        check_positive("block_width", block_width)
        check_positive("bucket_size", bucket_size)
        self.levels = tree_levels_for(num_blocks)  # leaf level index
        self.num_leaves = 1 << self.levels
        self.num_buckets = (1 << (self.levels + 1)) - 1
        self.bucket_size = bucket_size
        self.block_width = block_width
        self.tracer = tracer
        self.region = region
        self.ids = np.full((self.num_buckets, bucket_size), DUMMY, dtype=np.int64)
        self.leaves = np.zeros((self.num_buckets, bucket_size), dtype=np.int64)
        self.payloads = np.zeros((self.num_buckets, bucket_size, block_width),
                                 dtype=dtype)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_indices(self, leaf: int) -> List[int]:
        """Bucket heap-indices from root to the bucket of ``leaf``."""
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} out of range (< {self.num_leaves})")
        index = 0
        path = [0]
        for level in range(self.levels):
            bit = (leaf >> (self.levels - 1 - level)) & 1
            index = 2 * index + 1 + bit
            path.append(index)
        return path

    def common_depth(self, leaf_a: int, leaf_b: int) -> int:
        """Deepest level (0..levels) shared by the paths to two leaves."""
        if self.levels == 0:
            return 0
        diff = leaf_a ^ leaf_b
        if diff == 0:
            return self.levels
        return self.levels - diff.bit_length()

    # ------------------------------------------------------------------
    # Traced bucket access
    # ------------------------------------------------------------------
    def read_bucket(self, bucket: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read a bucket's (ids, leaves, payloads) as copies."""
        if self.tracer is not None:
            self.tracer.record(READ, self.region, bucket)
        return (self.ids[bucket].copy(), self.leaves[bucket].copy(),
                self.payloads[bucket].copy())

    def write_bucket(self, bucket: int, ids: np.ndarray, leaves: np.ndarray,
                     payloads: np.ndarray) -> None:
        if self.tracer is not None:
            self.tracer.record(WRITE, self.region, bucket)
        self.ids[bucket] = ids
        self.leaves[bucket] = leaves
        self.payloads[bucket] = payloads

    def read_bucket_metadata(self, bucket: int) -> Tuple[np.ndarray, np.ndarray]:
        """Metadata-only read (ids, leaves) — Circuit ORAM's scan passes."""
        if self.tracer is not None:
            self.tracer.record(READ, self.region, bucket)
        return self.ids[bucket].copy(), self.leaves[bucket].copy()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total real (non-dummy) blocks stored in the tree."""
        return int((self.ids != DUMMY).sum())

    def find_slot(self, bucket: int) -> Optional[int]:
        """Index of a free slot in ``bucket``, or ``None`` when full."""
        free = np.nonzero(self.ids[bucket] == DUMMY)[0]
        return int(free[0]) if free.size else None

    def place_initial(self, block_id: int, leaf: int, payload: np.ndarray) -> bool:
        """Offline placement used at build time: deepest free slot on the path.

        Initialization happens before any secret-dependent access, so direct
        placement leaks nothing. Returns False when the whole path is full
        (the caller then parks the block in the stash).
        """
        for bucket in reversed(self.path_indices(leaf)):
            slot = self.find_slot(bucket)
            if slot is not None:
                self.ids[bucket, slot] = block_id
                self.leaves[bucket, slot] = leaf
                self.payloads[bucket, slot] = payload
                return True
        return False
