"""Bucket re-encryption: the confidentiality half of "shuffle and re-encrypt".

Trees in ZeroTrace live in encrypted memory; every bucket write uses a
fresh nonce so an observer of raw memory *contents* (cold boot, bus probe,
§II-B) learns nothing — and cannot even tell whether a rewritten bucket
changed. This module provides a keystream cipher (a counter-mode PRG
construction seeded per (key, nonce); a stand-in for AES-CTR with the same
interface and the properties the tests need: determinism, key/nonce
sensitivity, and perfect round-trips) and an encrypting wrapper over
:class:`~repro.oram.tree.BucketTree`.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

import numpy as np

from repro.oram.tree import BucketTree
from repro.utils.validation import check_non_negative


class KeystreamCipher:
    """Counter-mode keystream cipher over byte buffers.

    The keystream is SHA-256 in counter mode over (key, nonce, block
    counter) — not a production cipher, but a faithful *model* of one:
    deterministic under (key, nonce), avalanche on either, XOR-symmetric.
    """

    BLOCK_BYTES = 32

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 16 bytes")
        self._key = bytes(key)

    def keystream(self, nonce: int, length: int) -> bytes:
        check_non_negative("length", length)
        blocks = []
        for counter in range((length + self.BLOCK_BYTES - 1)
                             // self.BLOCK_BYTES):
            digest = hashlib.sha256(
                self._key + nonce.to_bytes(16, "little")
                + counter.to_bytes(8, "little")).digest()
            blocks.append(digest)
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, nonce: int) -> bytes:
        stream = self.keystream(nonce, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    decrypt = encrypt  # XOR keystream is its own inverse


class EncryptedBucketTree:
    """A :class:`BucketTree` whose at-rest payloads are ciphertext.

    Each bucket carries a write counter; the nonce is (bucket index, write
    counter), so rewriting a bucket — even with identical content — yields
    fresh ciphertext. Reads decrypt transparently; the controller above is
    unchanged. Access *patterns* are still visible (that is ORAM's job);
    this layer hides *contents*.
    """

    def __init__(self, tree: BucketTree, key: bytes) -> None:
        self.tree = tree
        self._cipher = KeystreamCipher(key)
        self._write_counters = np.zeros(tree.num_buckets, dtype=np.int64)
        # Encrypt the initial state in place.
        for bucket in range(tree.num_buckets):
            self._encrypt_bucket(bucket)

    # -- passthrough geometry -------------------------------------------
    def __getattr__(self, name):
        return getattr(self.tree, name)

    def _nonce(self, bucket: int) -> int:
        return (bucket << 32) | int(self._write_counters[bucket])

    def _encrypt_bucket(self, bucket: int) -> None:
        raw = self.tree.payloads[bucket].tobytes()
        sealed = self._cipher.encrypt(raw, self._nonce(bucket))
        self.tree.payloads[bucket] = np.frombuffer(
            sealed, dtype=np.float64).reshape(self.tree.payloads[bucket].shape)

    def _decrypt_payloads(self, bucket: int) -> np.ndarray:
        raw = self.tree.payloads[bucket].tobytes()
        opened = self._cipher.decrypt(raw, self._nonce(bucket))
        return np.frombuffer(opened, dtype=np.float64).reshape(
            self.tree.payloads[bucket].shape).copy()

    # -- the BucketTree interface, decrypting/encrypting at the boundary --
    def read_bucket(self, bucket: int) -> Tuple[np.ndarray, np.ndarray,
                                                np.ndarray]:
        ids, leaves, _ = self.tree.read_bucket(bucket)
        return ids, leaves, self._decrypt_payloads(bucket)

    def write_bucket(self, bucket: int, ids: np.ndarray, leaves: np.ndarray,
                     payloads: np.ndarray) -> None:
        self._write_counters[bucket] += 1
        sealed = self._cipher.encrypt(
            np.ascontiguousarray(payloads, dtype=np.float64).tobytes(),
            self._nonce(bucket))
        self.tree.write_bucket(bucket, ids, leaves, np.frombuffer(
            sealed, dtype=np.float64).reshape(payloads.shape))

    def read_bucket_metadata(self, bucket: int) -> Tuple[np.ndarray,
                                                         np.ndarray]:
        return self.tree.read_bucket_metadata(bucket)

    def ciphertext_of(self, bucket: int) -> np.ndarray:
        """The raw (encrypted) payload bytes as stored — for tests."""
        return self.tree.payloads[bucket].copy()
