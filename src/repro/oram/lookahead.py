"""Lookahead/batched ORAM access (LAORAM, PAPERS.md).

Knowing a whole batch of block ids up front lets a tree ORAM do strictly
less work than a sequential ``access()`` loop while revealing strictly
less:

* **preassigned leaves** — one fresh leaf is drawn per batch slot up
  front (constant RNG consumption), so every remap is decided before any
  tree I/O happens;
* **batched position map** — all unique ids are looked up/updated in a
  single call (:meth:`~repro.oram.position_map.PositionMap.
  lookup_and_update_batch`); on a flat map that is *one* oblivious scan
  for the whole batch instead of one per access;
* **shared, level-padded path fetches** — the union of the old paths is
  fetched with exactly ``min(2^level, B)`` buckets per tree level: the
  distinct real path prefixes, padded with randomly drawn distinct
  buckets of the same level. One tree I/O per unique path, and the fetch
  schedule's *size* is a pure function of the public batch size ``B`` and
  the tree depth — duplicate-heavy batches fetch exactly as many buckets
  as all-distinct ones;
* **fused write-back** — Path ORAM drains the stash into the fetched
  buckets in one deepest-first sweep (each scheduled bucket written
  once); Circuit ORAM runs its usual two deterministic reverse-
  lexicographic eviction passes per batched access.

Every batched access additionally records a **decision trace** in the
``oram.lookahead`` region whose addresses are schedule *ordinals* (slot
numbers, fetch-sequence positions), never tree buckets. For the honest
implementation this trace is byte-identical across contrasting secret
batches of the same shape, so it is audited with
:class:`~repro.telemetry.audit.LeakageAuditor` in **exact** mode; the raw
memory trace (tree/stash/posmap regions) keeps the randomised-ORAM
convention and is audited **structurally**. The in-tree
:class:`SequentialLeakingBatcher` is the caught-by-construction negative
control: it deduplicates *without padding* — one full access per distinct
id, duplicates served from a client-side chain — so both its traces
shrink with index multiplicity and both audit modes flag it.

Duplicate semantics (pinned by regression tests): duplicate ids in one
batch share a single fetch, and slots observe/update the block in arrival
order — slot ``j`` sees the value after every earlier same-id slot's
``update_fn`` ran, exactly like the sequential loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.oblivious.trace import READ, WRITE, MemoryTracer
from repro.telemetry.runtime import get_registry

UpdateFn = Callable[[np.ndarray], np.ndarray]

#: decision-trace region of every batched access
LOOKAHEAD_REGION = "oram.lookahead"

#: decision-trace address bands (ordinals within the batch, never buckets)
ADDR_POSMAP = 1000
ADDR_FETCH = 2000
ADDR_SERVE = 3000
ADDR_WRITEBACK = 4000


def bucket_at(leaf: int, level: int, levels: int) -> int:
    """Heap index of the level-``level`` bucket on the path to ``leaf``."""
    return (1 << level) - 1 + (leaf >> (levels - level))


@dataclass
class BatchPlan:
    """One batch's precomputed decisions: leaves, dedup, fetch schedule."""

    block_ids: List[int]
    unique_ids: List[int]                  # arrival order
    slot_to_unique: List[int]              # per slot: index into unique_ids
    is_first: List[bool]                   # per slot: first occurrence?
    new_leaves: List[int]                  # per unique id (preassigned)
    old_leaves: List[int] = field(default_factory=list)   # per unique id
    schedule: List[List[int]] = field(default_factory=list)  # buckets/level
    padded_buckets: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.block_ids)

    @property
    def num_unique(self) -> int:
        return len(self.unique_ids)

    @property
    def num_fetched_buckets(self) -> int:
        return sum(len(level) for level in self.schedule)


def plan_batch(oram, block_ids: Sequence[int]) -> BatchPlan:
    """Dedup in arrival order and preassign one fresh leaf per slot.

    One leaf is drawn per *slot* (not per unique id) so the RNG
    consumption is batch-size constant; a unique id's new leaf is the draw
    made at its first-occurrence slot.
    """
    ids = [int(block_id) for block_id in block_ids]
    for block_id in ids:
        if not 0 <= block_id < oram.num_blocks:
            raise IndexError(
                f"block {block_id} out of range for ORAM of "
                f"{oram.num_blocks} blocks")
    draws = [int(oram.rng.integers(0, oram.tree.num_leaves)) for _ in ids]
    unique_ids: List[int] = []
    slot_to_unique: List[int] = []
    is_first: List[bool] = []
    new_leaves: List[int] = []
    position: Dict[int, int] = {}
    for slot, block_id in enumerate(ids):
        if block_id in position:
            slot_to_unique.append(position[block_id])
            is_first.append(False)
        else:
            position[block_id] = len(unique_ids)
            slot_to_unique.append(len(unique_ids))
            unique_ids.append(block_id)
            new_leaves.append(draws[slot])
            is_first.append(True)
    return BatchPlan(block_ids=ids, unique_ids=unique_ids,
                     slot_to_unique=slot_to_unique, is_first=is_first,
                     new_leaves=new_leaves)


def build_fetch_schedule(oram, plan: BatchPlan) -> None:
    """The level-padded union fetch: ``min(2^level, B)`` buckets per level.

    Real buckets are the distinct path prefixes of the unique old leaves;
    padding buckets are drawn uniformly (distinct, same level) until the
    public target count is reached, so the schedule *size* depends only on
    the batch size and the tree depth.
    """
    levels = oram.tree.levels
    batch = plan.batch_size
    for level in range(levels + 1):
        target = min(1 << level, batch)
        chosen = {bucket_at(leaf, level, levels) for leaf in plan.old_leaves}
        while len(chosen) < target:
            leaf = int(oram.rng.integers(0, oram.tree.num_leaves))
            bucket = bucket_at(leaf, level, levels)
            if bucket not in chosen:
                chosen.add(bucket)
                plan.padded_buckets += 1
        plan.schedule.append(sorted(chosen))


def _record(tracer: Optional[MemoryTracer], op: str, address: int) -> None:
    if tracer is not None:
        tracer.record(op, LOOKAHEAD_REGION, address)


def lookahead_access_batch(oram, block_ids: Sequence[int],
                           update_fns: Optional[Sequence[Optional[UpdateFn]]]
                           = None,
                           plan_tracer: Optional[MemoryTracer] = None
                           ) -> np.ndarray:
    """Serve a whole batch through one planned fetch/serve/write-back.

    Value-identical to the sequential ``access()`` loop (including
    duplicate chaining); returns the pre-update payloads, shape
    ``(batch, block_width)``. ``plan_tracer`` overrides where the
    ``oram.lookahead`` decision trace is recorded (default: the
    controller's own tracer).
    """
    ids = list(block_ids)
    batch = len(ids)
    if update_fns is None:
        fns: List[Optional[UpdateFn]] = [None] * batch
    else:
        fns = list(update_fns)
        if len(fns) != batch:
            raise ValueError(
                f"{batch} block ids but {len(fns)} update fns")
    if batch == 0:
        return np.zeros((0, oram.block_width))
    tracer = plan_tracer if plan_tracer is not None else oram.tracer
    registry = get_registry()
    reads_before = oram.stats.bucket_reads
    writes_before = oram.stats.bucket_writes
    evictions_before = oram.stats.eviction_passes
    try:
        with registry.span("oram.access_batch", scheme=type(oram).__name__,
                           batch=batch):
            plan = plan_batch(oram, ids)
            # Batched position-map pass: one call for all unique ids,
            # padded to the public batch size on per-lookup maps.
            plan.old_leaves = list(oram.position_map.lookup_and_update_batch(
                plan.unique_ids, plan.new_leaves, pad_to=batch))
            for slot in range(batch):
                _record(tracer, WRITE, ADDR_POSMAP + slot)
            build_fetch_schedule(oram, plan)
            for ordinal in range(plan.num_fetched_buckets):
                _record(tracer, READ, ADDR_FETCH + ordinal)
            oram._lookahead_reserve(plan)
            oram._lookahead_fetch(plan)
            results = _serve_batch(oram, plan, fns, tracer)
            writeback_units = oram._lookahead_writeback(plan)
            for ordinal in range(writeback_units):
                _record(tracer, WRITE, ADDR_WRITEBACK + ordinal)
            oram.stats.accesses += batch
            oram.stats.revealed_leaves.extend(plan.old_leaves)
            oram._check_stash_bound()
    finally:
        registry.counter("oram.accesses_total").inc(batch)
        registry.counter("oram.bucket_reads_total").inc(
            oram.stats.bucket_reads - reads_before)
        registry.counter("oram.bucket_writes_total").inc(
            oram.stats.bucket_writes - writes_before)
        registry.counter("oram.eviction_passes_total").inc(
            oram.stats.eviction_passes - evictions_before)
        registry.counter("oram.lookahead.batches_total").inc()
        registry.counter("oram.lookahead.batched_accesses_total").inc(batch)
        registry.gauge("oram.stash_occupancy").set(oram.stash.occupancy)
        registry.gauge("oram.stash_peak_occupancy").set_max(
            oram.stash.peak_occupancy)
        registry.gauge("oram.lookahead.stash_high_water").set_max(
            oram.stash.peak_occupancy)
    registry.counter("oram.lookahead.shared_fetches_total").inc(
        batch - plan.num_unique)
    registry.counter("oram.lookahead.padded_fetches_total").inc(
        plan.padded_buckets)
    return np.stack(results)


def _serve_batch(oram, plan: BatchPlan,
                 update_fns: Sequence[Optional[UpdateFn]],
                 tracer: Optional[MemoryTracer]) -> List[np.ndarray]:
    """Serve every slot from the stash in arrival order.

    Each slot costs exactly one stash peek plus one stash update —
    duplicates included — so stash traffic never reveals multiplicity.
    Duplicate slots re-install the same fresh leaf (same value, same
    traffic) and see the payload left by earlier same-id slots.
    """
    results: List[np.ndarray] = []
    for slot, block_id in enumerate(plan.block_ids):
        _record(tracer, READ, ADDR_SERVE + slot)
        found = oram.stash.peek(block_id)
        if found is None:
            raise KeyError(
                f"block {block_id} not found — ORAM invariant broken")
        _, payload = found
        results.append(payload.copy())
        fn = update_fns[slot]
        if fn is not None:
            payload = np.asarray(fn(payload), dtype=np.float64)
        oram.stash.update(
            block_id, leaf=plan.new_leaves[plan.slot_to_unique[slot]],
            payload=payload)
    return results


class SequentialLeakingBatcher:
    """Negative control: dedup *without padding* — caught by construction.

    Serves each distinct id with one full sequential ``access()`` and
    chains duplicate slots through a client-side closure, so the results
    are value-identical to the honest batch — but the number of path
    fetches (and the decision-trace length) equals the number of *unique*
    ids. A batch hammering one row produces a visibly shorter trace than
    an all-distinct batch of the same size: exact-mode and structural
    audits both flag it.
    """

    def access_batch(self, oram, block_ids: Sequence[int],
                     update_fns: Optional[Sequence[Optional[UpdateFn]]]
                     = None,
                     plan_tracer: Optional[MemoryTracer] = None
                     ) -> np.ndarray:
        ids = [int(block_id) for block_id in block_ids]
        if update_fns is None:
            fns: List[Optional[UpdateFn]] = [None] * len(ids)
        else:
            fns = list(update_fns)
            if len(fns) != len(ids):
                raise ValueError(
                    f"{len(ids)} block ids but {len(fns)} update fns")
        if not ids:
            return np.zeros((0, oram.block_width))
        tracer = plan_tracer if plan_tracer is not None else oram.tracer
        slots_by_id: Dict[int, List[int]] = {}
        for slot, block_id in enumerate(ids):
            slots_by_id.setdefault(block_id, []).append(slot)
        results: List[Optional[np.ndarray]] = [None] * len(ids)

        for ordinal, (block_id, slots) in enumerate(slots_by_id.items()):
            _record(tracer, READ, ADDR_FETCH + ordinal)

            def chain(payload: np.ndarray,
                      slots: List[int] = slots) -> np.ndarray:
                value = np.asarray(payload, dtype=np.float64)
                for slot in slots:
                    results[slot] = value.copy()
                    if fns[slot] is not None:
                        value = np.asarray(fns[slot](value),
                                           dtype=np.float64)
                return value

            oram.access(block_id, chain)
        return np.stack([row for row in results])


# ----------------------------------------------------------------------
# Audit helpers: exact decision trace + structural memory trace
# ----------------------------------------------------------------------
def batched_decision_runner(oram_factory, batcher=None):
    """Runner capturing only the ``oram.lookahead`` decision trace.

    The ORAM is built *without* a tracer; the audit tracer is passed as
    ``plan_tracer`` only, so the captured trace contains exclusively the
    public scheduling decisions — audited in exact mode.
    """
    def run(tracer: MemoryTracer, secret: Sequence[Sequence[int]]) -> None:
        oram = oram_factory(None)
        for batch in secret:
            if batcher is None:
                oram.access_batch(list(batch), plan_tracer=tracer)
            else:
                batcher.access_batch(oram, list(batch), plan_tracer=tracer)
    return run


def batched_memory_runner(oram_factory, batcher=None):
    """Runner capturing the full memory trace (tree/stash/posmap regions).

    Initialisation traffic is dropped; the batched trace is
    count-constant by construction, so it is audited structurally (the
    randomised-ORAM convention).
    """
    def run(tracer: MemoryTracer, secret: Sequence[Sequence[int]]) -> None:
        oram = oram_factory(tracer)
        tracer.clear()
        for batch in secret:
            if batcher is None:
                oram.access_batch(list(batch))
            else:
                batcher.access_batch(oram, list(batch))
    return run


def contrasting_batches(num_blocks: int, batch_size: int = 16,
                        num_batches: int = 3) -> List[List[List[int]]]:
    """Secret workloads maximising contrast in both value and multiplicity:
    hammer the first block, hammer the last, and an all-distinct sweep."""
    sweep = [[(batch * batch_size + slot) % num_blocks
              for slot in range(batch_size)] for batch in range(num_batches)]
    return [
        [[0] * batch_size for _ in range(num_batches)],
        [[num_blocks - 1] * batch_size for _ in range(num_batches)],
        sweep,
    ]


def lookahead_subjects(num_blocks: int = 32, block_width: int = 4,
                       batch_size: int = 16, num_batches: int = 3,
                       seed: int = 0) -> List["AuditSubject"]:
    """Audit subjects for the batched path: exact decision traces and
    structural memory traces for Path + Circuit, plus the leaky control."""
    from repro.oram.circuit_oram import CircuitORAM
    from repro.oram.path_oram import PathORAM
    from repro.telemetry.audit import (
        MODE_EXACT,
        MODE_STRUCTURAL,
        AuditSubject,
    )

    secrets = contrasting_batches(num_blocks, batch_size, num_batches)

    def factory(oram_class):
        def build(tracer):
            return oram_class(num_blocks, block_width, rng=seed,
                              stash_capacity=num_blocks, tracer=tracer)
        return build

    subjects = []
    for oram_class, name in ((PathORAM, "path"), (CircuitORAM, "circuit")):
        subjects.append(AuditSubject(
            f"{name}-lookahead-plan",
            batched_decision_runner(factory(oram_class)),
            secrets, mode=MODE_EXACT))
        subjects.append(AuditSubject(
            f"{name}-lookahead-memory",
            batched_memory_runner(factory(oram_class)),
            secrets, mode=MODE_STRUCTURAL))
    subjects.append(AuditSubject(
        "sequential-leaking-batcher",
        batched_decision_runner(factory(PathORAM),
                                batcher=SequentialLeakingBatcher()),
        secrets, mode=MODE_EXACT, expect_oblivious=False))
    return subjects
