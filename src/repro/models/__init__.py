"""End-to-end models: DLRM and a GPT-2-style LLM with pluggable embeddings."""

from repro.models.dlrm import (
    DLRM,
    KAGGLE_BOTTOM,
    KAGGLE_TOP_HIDDEN,
    TERABYTE_BOTTOM,
    TERABYTE_TOP_HIDDEN,
    dhe_factory,
    table_factory,
)
from repro.models.gpt import GPT, GPTConfig, tiny_config
from repro.models.training import (
    TrainHistory,
    evaluate_dlrm,
    evaluate_perplexity,
    train_dlrm,
    train_gpt,
)

__all__ = [
    "DLRM",
    "KAGGLE_BOTTOM",
    "KAGGLE_TOP_HIDDEN",
    "TERABYTE_BOTTOM",
    "TERABYTE_TOP_HIDDEN",
    "dhe_factory",
    "table_factory",
    "GPT",
    "GPTConfig",
    "tiny_config",
    "TrainHistory",
    "evaluate_dlrm",
    "evaluate_perplexity",
    "train_dlrm",
    "train_gpt",
]
