"""A GPT-2-architecture decoder-only transformer (Fig 1(b), §VI-A3).

The token-embedding layer is a pluggable
:class:`~repro.embedding.EmbeddingGenerator` — table lookup, linear scan,
ORAM-protected table, or DHE — which is exactly the design axis the paper's
LLM study varies. Everything downstream (positions, attention, MLPs, the
output head) has deterministic, shape-only access patterns (§V-C).

The output head follows GPT-2's weight tying where possible: with a table
embedding the same matrix produces logits; with DHE the head keeps its own
(vocab x dim) matrix, matching the paper's memory accounting (DHE *adds*
parameters to the model, §VI-D3).

Inference implements the two stages the paper measures separately:
``prefill`` processes the whole prompt (a large embedding batch) and fills
the KV cache; ``decode_step`` generates one token reusing it. Greedy
sampling uses the oblivious cmov argmax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.embedding.base import EmbeddingGenerator
from repro.embedding.table import TableEmbedding
from repro.nn.attention import KVCache, TransformerBlock
from repro.nn.layers import LayerNorm
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.oblivious.primitives import oblivious_argmax_vectorized
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GPTConfig:
    """Model hyper-parameters (GPT-2 medium: 1024 dim, 24 layers, 16 heads)."""

    vocab_size: int = 50257
    embed_dim: int = 1024
    num_layers: int = 24
    num_heads: int = 16
    context_length: int = 1024
    dropout: float = 0.0

    def __post_init__(self) -> None:
        check_positive("vocab_size", self.vocab_size)
        check_positive("embed_dim", self.embed_dim)
        check_positive("num_layers", self.num_layers)
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")


def tiny_config(vocab_size: int = 128, embed_dim: int = 32, num_layers: int = 2,
                num_heads: int = 2, context_length: int = 64) -> GPTConfig:
    """A trainable-in-seconds configuration for tests and examples."""
    return GPTConfig(vocab_size=vocab_size, embed_dim=embed_dim,
                     num_layers=num_layers, num_heads=num_heads,
                     context_length=context_length)


class GPT(Module):
    """Decoder-only transformer with a pluggable token-embedding generator."""

    def __init__(self, config: GPTConfig,
                 token_embedding: Optional[EmbeddingGenerator] = None,
                 rng: SeedLike = None) -> None:
        super().__init__()
        self.config = config
        generator = new_rng(rng)
        if token_embedding is None:
            token_embedding = TableEmbedding(config.vocab_size,
                                             config.embed_dim, rng=generator)
        if token_embedding.num_embeddings != config.vocab_size \
                or token_embedding.embedding_dim != config.embed_dim:
            raise ValueError("token embedding shape does not match config")
        self.token_embedding = token_embedding
        self.position_embedding = Parameter(
            generator.normal(0.0, 0.02,
                             size=(config.context_length, config.embed_dim)))
        self.blocks: List[TransformerBlock] = []
        for layer in range(config.num_layers):
            block = TransformerBlock(config.embed_dim, config.num_heads,
                                     dropout=config.dropout, rng=generator)
            self.blocks.append(block)
            setattr(self, f"block{layer}", block)
        self.ln_f = LayerNorm(config.embed_dim)

        # Weight tying: reuse the table when the generator has one.
        tied = getattr(token_embedding, "weight", None)
        if tied is not None and tied.shape == (config.vocab_size,
                                               config.embed_dim):
            self.lm_head_weight = tied
            self.tied_head = True
        else:
            self.lm_head_weight = Parameter(
                generator.normal(0.0, 0.02,
                                 size=(config.vocab_size, config.embed_dim)))
            self.tied_head = False

    # ------------------------------------------------------------------
    def _embed(self, tokens: np.ndarray, position_offset: int = 0) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, time), got {tokens.shape}")
        time = tokens.shape[1]
        if position_offset + time > self.config.context_length:
            raise ValueError(
                f"sequence of {position_offset + time} exceeds context "
                f"{self.config.context_length}")
        token_vecs = self.token_embedding(tokens)
        positions = self.position_embedding[
            position_offset: position_offset + time]
        return token_vecs + positions

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Teacher-forcing logits, shape (batch, time, vocab)."""
        x = self._embed(tokens)
        for block in self.blocks:
            x = block(x)
        x = self.ln_f(x)
        return x @ self.lm_head_weight.transpose()

    # ------------------------------------------------------------------
    # Two-stage inference
    # ------------------------------------------------------------------
    def new_caches(self) -> List[KVCache]:
        return [KVCache() for _ in self.blocks]

    def prefill(self, tokens: np.ndarray,
                caches: List[KVCache]) -> Tensor:
        """Process the prompt; returns logits at the final position."""
        x = self._embed(tokens, position_offset=0)
        for block, cache in zip(self.blocks, caches):
            x = block(x, cache=cache)
        x = self.ln_f(x)
        logits = x[:, -1, :] @ self.lm_head_weight.transpose()
        return logits

    def decode_step(self, tokens: np.ndarray,
                    caches: List[KVCache]) -> Tensor:
        """One autoregressive step; ``tokens`` is (batch, 1)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2 or tokens.shape[1] != 1:
            raise ValueError(f"decode step expects (batch, 1), got {tokens.shape}")
        offset = caches[0].length
        x = self._embed(tokens, position_offset=offset)
        for block, cache in zip(self.blocks, caches):
            x = block(x, cache=cache)
        x = self.ln_f(x)
        return x[:, -1, :] @ self.lm_head_weight.transpose()

    def generate(self, prompt: np.ndarray, max_new_tokens: int,
                 oblivious_sampling: bool = True,
                 top_k: Optional[int] = None, temperature: float = 1.0,
                 rng=None) -> np.ndarray:
        """Autoregressive generation; returns (batch, prompt+new) tokens.

        Greedy by default. With ``top_k`` set, stochastic top-k/temperature
        sampling is used instead. With ``oblivious_sampling`` the selection
        runs through the constant-trace cmov primitives (§V-C and the
        oblivious top-k extension); otherwise plain numpy.
        """
        check_positive("max_new_tokens", max_new_tokens)
        prompt = np.asarray(prompt, dtype=np.int64)
        if prompt.ndim != 2:
            raise ValueError("prompt must be (batch, time)")
        self.eval()
        caches = self.new_caches()
        logits = self.prefill(prompt, caches)
        sequence = prompt.copy()
        generator = new_rng(rng)
        for _ in range(max_new_tokens):
            next_tokens = self._pick_tokens(logits.data, oblivious_sampling,
                                            top_k, temperature, generator)
            sequence = np.concatenate([sequence, next_tokens[:, None]], axis=1)
            if sequence.shape[1] >= self.config.context_length:
                break
            logits = self.decode_step(next_tokens[:, None], caches)
        return sequence

    @staticmethod
    def _pick_tokens(logits: np.ndarray, oblivious: bool,
                     top_k: Optional[int], temperature: float,
                     rng: np.random.Generator) -> np.ndarray:
        if top_k is None:
            if oblivious:
                return np.array([oblivious_argmax_vectorized(row)
                                 for row in logits],
                                dtype=np.int64)
            return logits.argmax(axis=-1).astype(np.int64)
        if oblivious:
            from repro.oblivious.sampling import oblivious_sample_batch

            return oblivious_sample_batch(logits, top_k,
                                          temperature=temperature, rng=rng)
        tokens = []
        for row in logits:
            order = np.argsort(row)[::-1][:top_k]
            scaled = row[order] / temperature
            weights = np.exp(scaled - scaled.max())
            tokens.append(rng.choice(order, p=weights / weights.sum()))
        return np.array(tokens, dtype=np.int64)

    # ------------------------------------------------------------------
    def num_non_embedding_parameters(self) -> int:
        """Parameter count excluding token-embedding/head (for footprints)."""
        skip = {id(self.lm_head_weight)}
        emb_param = getattr(self.token_embedding, "weight", None)
        if emb_param is not None:
            skip.add(id(emb_param))
        seen = set()
        total = 0
        for _, param in self.named_parameters():
            if id(param) in skip or id(param) in seen:
                continue
            seen.add(id(param))
            total += param.size
        return total
