"""Training loops for DLRM (CTR) and GPT (language modelling).

These drive the accuracy-parity experiments: Table V (table vs DHE DLRMs
reach the same accuracy) and Fig 14 (DHE-GPT finetunes to near-table
perplexity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.criteo import SyntheticCtrDataset
from repro.data.text import batchify
from repro.metrics.accuracy import binary_accuracy, roc_auc
from repro.metrics.perplexity import perplexity_from_loss
from repro.models.dlrm import DLRM
from repro.models.gpt import GPT
from repro.nn.losses import bce_with_logits, cross_entropy
from repro.nn.optim import Adam, AdamW, Optimizer
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


@dataclass
class TrainHistory:
    """Loss/metric curves collected during a training run."""

    steps: List[int] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    eval_metric: List[float] = field(default_factory=list)

    def best_metric(self, larger_is_better: bool = True) -> float:
        if not self.eval_metric:
            raise ValueError("no evaluations recorded")
        return max(self.eval_metric) if larger_is_better else min(self.eval_metric)


# ----------------------------------------------------------------------
# DLRM
# ----------------------------------------------------------------------
def train_dlrm(model: DLRM, dataset: SyntheticCtrDataset, steps: int,
               batch_size: int = 128, lr: float = 1e-3,
               eval_every: int = 0, eval_batch: int = 2048,
               optimizer: Optional[Optimizer] = None) -> TrainHistory:
    """SGD training of a DLRM on synthetic CTR data."""
    check_positive("steps", steps)
    optimizer = optimizer or Adam(model.parameters(), lr=lr)
    history = TrainHistory()
    model.train()
    for step in range(steps):
        batch = dataset.batch(batch_size)
        optimizer.zero_grad()
        logits = model(batch.dense, batch.sparse)
        loss = bce_with_logits(logits, batch.labels)
        loss.backward()
        optimizer.step()
        history.steps.append(step)
        history.train_loss.append(loss.item())
        if eval_every and (step + 1) % eval_every == 0:
            history.eval_metric.append(
                evaluate_dlrm(model, dataset, eval_batch)["accuracy"])
            model.train()
    return history


def evaluate_dlrm(model: DLRM, dataset: SyntheticCtrDataset,
                  num_samples: int = 4096, batch_size: int = 512
                  ) -> Dict[str, float]:
    """Held-out accuracy and ROC-AUC (fresh draws from the generator)."""
    model.eval()
    all_logits, all_labels = [], []
    remaining = num_samples
    while remaining > 0:
        batch = dataset.batch(min(batch_size, remaining))
        logits = model(batch.dense, batch.sparse).data
        all_logits.append(logits)
        all_labels.append(batch.labels)
        remaining -= len(batch)
    logits = np.concatenate(all_logits)
    labels = np.concatenate(all_labels)
    return {
        "accuracy": binary_accuracy(labels, logits),
        "auc": roc_auc(labels, logits),
    }


# ----------------------------------------------------------------------
# GPT
# ----------------------------------------------------------------------
def train_gpt(model: GPT, tokens: np.ndarray, steps: int,
              batch_size: int = 8, seq_len: int = 32, lr: float = 3e-4,
              val_tokens: Optional[np.ndarray] = None, eval_every: int = 0,
              grad_clip: float = 1.0, rng: SeedLike = 0,
              optimizer: Optional[Optimizer] = None,
              schedule: Optional["CosineSchedule"] = None,
              warmup_fraction: Optional[float] = None) -> TrainHistory:
    """Language-model (fine)tuning; eval metric is validation perplexity.

    ``warmup_fraction`` builds a cosine schedule with that warmup share
    (the nanoGPT-style recipe); an explicit ``schedule`` overrides it.
    """
    check_positive("steps", steps)
    optimizer = optimizer or AdamW(model.parameters(), lr=lr)
    if schedule is None and warmup_fraction is not None:
        from repro.nn.optim import CosineSchedule

        schedule = CosineSchedule(base_lr=lr,
                                  warmup_steps=int(warmup_fraction * steps),
                                  total_steps=steps, min_lr=lr * 0.1)
    generator = new_rng(rng)
    history = TrainHistory()
    model.train()
    for step in range(steps):
        if schedule is not None:
            schedule.apply(optimizer, step)
        inputs, targets = batchify(tokens, batch_size, seq_len, rng=generator)
        optimizer.zero_grad()
        logits = model(inputs)
        loss = cross_entropy(logits, targets)
        loss.backward()
        if grad_clip:
            optimizer.clip_grad_norm(grad_clip)
        optimizer.step()
        history.steps.append(step)
        history.train_loss.append(loss.item())
        if eval_every and (step + 1) % eval_every == 0 and val_tokens is not None:
            history.eval_metric.append(
                evaluate_perplexity(model, val_tokens, seq_len=seq_len,
                                    rng=generator))
            model.train()
    return history


def evaluate_perplexity(model: GPT, tokens: np.ndarray, seq_len: int = 32,
                        num_batches: int = 8, batch_size: int = 8,
                        rng: SeedLike = 0) -> float:
    """Validation perplexity over sampled windows."""
    model.eval()
    generator = new_rng(rng)
    losses = []
    for _ in range(num_batches):
        inputs, targets = batchify(tokens, batch_size, seq_len, rng=generator)
        logits = model(inputs)
        losses.append(cross_entropy(logits, targets).item())
    return perplexity_from_loss(float(np.mean(losses)))
