"""Table I: asymptotic complexity of the secure embedding methods.

Verified empirically: fitted growth exponents of the modelled costs against
table size / k confirm O(n), O(log^2 n), O(k^2).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.costmodel import (
    DheShape,
    dhe_latency,
    linear_scan_latency,
    oram_access_bytes,
)
from repro.experiments.reporting import ExperimentResult


def _fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x)."""
    logs_x = np.log(np.asarray(xs, dtype=float))
    logs_y = np.log(np.asarray(ys, dtype=float))
    slope = np.polyfit(logs_x, logs_y, 1)[0]
    return float(slope)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Complexity of secure embedding generation (empirical fit)",
        headers=("technique", "paper_compute", "fitted_exponent",
                 "fit_variable"),
    )

    sizes = [10 ** e for e in range(3, 8)]
    scan = [linear_scan_latency(n, 64, 1) for n in sizes]
    result.add_row("linear scan", "O(n)", round(_fit_exponent(sizes, scan), 2),
                   "table size n")

    # ORAM: bytes per access vs log^2 n -> fit against (log n)^2.
    log_sq = [math.log2(n) ** 2 for n in sizes]
    oram = [oram_access_bytes("circuit", n, 64) for n in sizes]
    result.add_row("tree ORAM", "O(log^2 n)",
                   round(_fit_exponent(log_sq, oram), 2), "(log2 n)^2")

    ks = [128, 256, 512, 1024, 2048]
    dhe = [dhe_latency(DheShape(k, (k // 2, k // 4), 64), 1) for k in ks]
    result.add_row("DHE", "O(k^2)", round(_fit_exponent(ks, dhe), 2),
                   "hash count k")
    result.notes = ("scan ~1 in n and DHE ~2 in k confirm Table I; the ORAM "
                    "fit lands below 1 against (log n)^2 because the 16x "
                    "position-map compression keeps recursion shallow — "
                    "O(log^2 n) is the upper bound")
    return result
