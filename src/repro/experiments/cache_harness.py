"""Oblivious-caching harness: the admission-policy sweep, gated.

Not a paper figure — the serving-stack extension. Runs the
:mod:`repro.cache.bench` sweep (no-cache baseline, static whole-table
residency, decoder-weight reuse cold vs shared, batch-level result
sharing over the Fig 13 Terabyte workload) and tabulates per-scenario
latency percentiles, busy time, and hit rates, plus the gate verdicts
(latency improvement, counted decoder reuse, skew invariance of every
cache counter, the exact-mode leakage audit, and the index-keyed LRU
negative control being caught).
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0) -> ExperimentResult:
    from repro.cache.bench import run_bench

    report = run_bench(seed=seed)
    result = ExperimentResult(
        experiment_id="cache",
        title=f"oblivious-safe caching (seed={seed}, "
              f"spec={report['spec']}, {report['num_requests']} requests x "
              f"{report['epochs']} epochs x 2 serves @ "
              f"{report['rate_rps']:.0f} rps)",
        headers=("scenario", "p50_ms", "p99_ms", "busy_s", "hits", "misses",
                 "hit_rate"),
    )
    for scenario in report["scenarios"]:
        cached = scenario["cache_hits"] is not None
        result.add_row(
            scenario["name"],
            f"{scenario['p50_seconds'] * 1e3:.3f}",
            f"{scenario['p99_seconds'] * 1e3:.3f}",
            f"{scenario['busy_seconds']:.3f}",
            scenario["cache_hits"] if cached else "-",
            scenario["cache_misses"] if cached else "-",
            f"{scenario['cache_hit_rate']:.3f}" if cached else "-")
    gates = report["gates"]
    result.notes = (
        f"decoder admissions shared={report['decoder_admissions_shared']} "
        f"vs cold={report['decoder_admissions_cold']} "
        f"({report['dhe_features']} DHE features); gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; every cache counter is identical across hot-head/hot-tail/"
          "uniform index profiles and the index-keyed LRU negative control "
          "is caught by the exact-mode audit")
    return result
