"""One runnable experiment per paper table/figure; see ``registry``."""

from repro.experiments.reporting import ExperimentResult, format_mb, format_ms

__all__ = ["ExperimentResult", "format_mb", "format_ms"]
