"""Lazy-execution harness: the eager-vs-captured dispatch sweep, gated.

Not a paper figure — the execution-stack extension. Runs the
:mod:`repro.lazy.bench` sweep (DHE decode, masked-onehot scan, DLRM bottom
MLP over the Fig 12 batch sizes) and tabulates per-cell recorded-op vs
fused-kernel counts, replay parity, and the gate verdicts (bit-for-bit
parity, fusion, graph-cache hits, buffer reuse, leakage audit with the
index-leaking negative control).
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0) -> ExperimentResult:
    from repro.lazy.bench import run_bench

    report = run_bench(seed=seed)
    shape = report["dhe_shape"]
    result = ExperimentResult(
        experiment_id="lazy",
        title=f"eager vs captured dispatch (seed={seed}, "
              f"table {report['table_rows']}x{report['embedding_dim']}, "
              f"DHE k={shape['k']} fc={tuple(shape['fc_sizes'])}, "
              f"runtime={report['runtime']})",
        headers=("path", "batch", "eager_ops", "kernels", "dispatch_ratio",
                 "buffer_kib", "replays", "parity"),
    )
    for cell in report["cells"]:
        result.add_row(cell["path"], cell["batch"], cell["eager_ops"],
                       cell["kernels"], f"{cell['dispatch_ratio']:.2f}x",
                       f"{cell['buffer_bytes'] / 1024:.1f}",
                       cell["replays"],
                       "ok" if cell["parity"] else "MISMATCH")
    gates = report["gates"]
    result.notes = (
        f"{report['cached_graphs']} cached graphs; gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; replays are byte-identical to eager and the kernel-launch "
          "trace is fixed at compile time — the index-leaking scheduler "
          "negative control is caught by the exact-mode audit")
    return result
