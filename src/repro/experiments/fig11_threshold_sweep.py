"""Fig 11: single-model latency as the scan/DHE split threshold sweeps.

For the Hybrid Varied model, sweep the number of (size-sorted) features
allocated to linear scan and report end-to-end latency; the minimum should
sit at the profiled threshold's split (the paper found an exact match for
this configuration).
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import (
    DLRM_DHE_UNIFORM_16,
    DLRM_DHE_UNIFORM_64,
    MLP_OVERHEAD_SECONDS,
    DheShape,
)
from repro.data import KAGGLE_SPEC, DlrmDatasetSpec
from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.hybrid.allocator import FeatureAllocation, allocation_latency
from repro.serving.backends import ModelledBackend


def embedding_latency_for_split(sizes_sorted: Sequence[int], num_scan: int,
                                uniform: DheShape, batch: int,
                                threads: int, varied: bool = True) -> float:
    """Latency when the ``num_scan`` smallest tables scan and the rest DHE."""
    allocations = [
        FeatureAllocation(position, size,
                          TECHNIQUE_SCAN if position < num_scan
                          else TECHNIQUE_DHE)
        for position, size in enumerate(sizes_sorted)
    ]
    return allocation_latency(allocations, ModelledBackend(uniform),
                              uniform.out_dim, batch, threads, varied=varied)


def run(spec: DlrmDatasetSpec = KAGGLE_SPEC, batch: int = 32,
        threads: int = 1) -> ExperimentResult:
    uniform = (DLRM_DHE_UNIFORM_16 if spec.embedding_dim == 16
               else DLRM_DHE_UNIFORM_64)
    sizes_sorted = sorted(spec.table_sizes)

    # Profiled suggestion for this configuration.
    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(spec.embedding_dim,), batches=(batch,),
                               threads_list=(threads,))
    thresholds = build_threshold_database(
        profile, dhe_technique="dhe-varied", dims=(spec.embedding_dim,),
        batches=(batch,), threads_list=(threads,))
    threshold = thresholds.threshold(spec.embedding_dim, batch, threads)
    suggested_split = sum(1 for size in sizes_sorted if size <= threshold)

    result = ExperimentResult(
        experiment_id="fig11",
        title=f"{spec.name}: end-to-end latency vs #features on linear scan "
              f"(Hybrid Varied, batch={batch}, threads={threads})",
        headers=("num_scan_features", "latency_ms", "is_profiled_split"),
    )
    best_split, best_latency = 0, float("inf")
    for num_scan in range(len(sizes_sorted) + 1):
        latency = MLP_OVERHEAD_SECONDS + embedding_latency_for_split(
            sizes_sorted, num_scan, uniform, batch, threads)
        if latency < best_latency:
            best_split, best_latency = num_scan, latency
        result.add_row(num_scan, format_ms(latency),
                       "<-- profiled" if num_scan == suggested_split else "")
    result.notes = (f"profiled split {suggested_split}, empirical best "
                    f"{best_split} (paper: exact match for this config)")
    return result
