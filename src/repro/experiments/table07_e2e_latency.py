"""Table VII: end-to-end DLRM latency per protection technique.

Batch 32, 1 thread, Kaggle + Terabyte; speed-ups reported relative to
Circuit ORAM (the paper's most competitive traditional baseline).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.costmodel import (
    DLRM_DHE_UNIFORM_16,
    DLRM_DHE_UNIFORM_64,
    DheShape,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    lookup_latency,
    oram_latency,
)
from repro.data import KAGGLE_SPEC, TERABYTE_SPEC, DlrmDatasetSpec
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.hybrid import OfflineProfiler, build_threshold_database

MLP_OVERHEAD_SECONDS = 1.5e-3

TECHNIQUE_ORDER = ("index_lookup", "linear_scan", "path_oram", "circuit_oram",
                   "dhe_uniform", "dhe_varied", "hybrid_uniform",
                   "hybrid_varied")


def dataset_latencies(spec: DlrmDatasetSpec, batch: int = 32,
                      threads: int = 1) -> Dict[str, float]:
    """End-to-end latency (seconds) of each technique on one dataset."""
    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64

    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-uniform",
                                           "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(threads,))
    thresholds = {
        variant: build_threshold_database(
            profile, dhe_technique=f"dhe-{variant}", dims=(dim,),
            batches=(batch,),
            threads_list=(threads,)).threshold(dim, batch, threads)
        for variant in ("uniform", "varied")
    }

    def hybrid(varied: bool) -> float:
        threshold = thresholds["varied" if varied else "uniform"]
        total = 0.0
        for size in spec.table_sizes:
            if size <= threshold:
                total += linear_scan_latency(size, dim, batch, threads)
            else:
                shape = dhe_varied_shape(size, uniform) if varied else uniform
                total += dhe_latency(shape, batch, threads)
        return total

    embeddings = {
        "index_lookup": sum(lookup_latency(size, dim, batch, threads)
                            for size in spec.table_sizes),
        "linear_scan": sum(linear_scan_latency(size, dim, batch, threads)
                           for size in spec.table_sizes),
        "path_oram": sum(oram_latency("path", size, dim, batch, threads)
                         for size in spec.table_sizes),
        "circuit_oram": sum(oram_latency("circuit", size, dim, batch, threads)
                            for size in spec.table_sizes),
        "dhe_uniform": len(spec.table_sizes) * dhe_latency(uniform, batch,
                                                           threads),
        "dhe_varied": sum(dhe_latency(dhe_varied_shape(size, uniform),
                                      batch, threads)
                          for size in spec.table_sizes),
        "hybrid_uniform": hybrid(varied=False),
        "hybrid_varied": hybrid(varied=True),
    }
    return {name: latency + MLP_OVERHEAD_SECONDS
            for name, latency in embeddings.items()}


def run(batch: int = 32, threads: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table7",
        title=f"DLRM end-to-end latency (ms), batch={batch}, threads={threads}",
        headers=("technique", "kaggle_ms", "kaggle_vs_circuit",
                 "terabyte_ms", "terabyte_vs_circuit"),
        notes="paper: Hybrid Varied 2.01x (Kaggle) / 2.28x (Terabyte) over "
              "Circuit ORAM",
    )
    kaggle = dataset_latencies(KAGGLE_SPEC, batch, threads)
    terabyte = dataset_latencies(TERABYTE_SPEC, batch, threads)
    for technique in TECHNIQUE_ORDER:
        result.add_row(
            technique,
            format_ms(kaggle[technique]),
            round(kaggle["circuit_oram"] / kaggle[technique], 3),
            format_ms(terabyte[technique]),
            round(terabyte["circuit_oram"] / terabyte[technique], 3),
        )
    return result
