"""Table VII: end-to-end DLRM latency per protection technique.

Batch 32, 1 thread, Kaggle + Terabyte; speed-ups reported relative to
Circuit ORAM (the paper's most competitive traditional baseline). All
per-table latencies resolve through the serving
:class:`~repro.serving.backends.ExecutionBackend` — the same seam the
profiler and the execution engine use.
"""

from __future__ import annotations

from typing import Dict

from repro.costmodel import (
    DLRM_DHE_UNIFORM_16,
    DLRM_DHE_UNIFORM_64,
    MLP_OVERHEAD_SECONDS,
)
from repro.data import KAGGLE_SPEC, TERABYTE_SPEC, DlrmDatasetSpec
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.hybrid import (
    OfflineProfiler,
    allocate_by_threshold,
    allocation_latency,
    build_threshold_database,
)
from repro.serving.backends import BackendLike, resolve_backend

TECHNIQUE_ORDER = ("index_lookup", "linear_scan", "path_oram", "circuit_oram",
                   "dhe_uniform", "dhe_varied", "hybrid_uniform",
                   "hybrid_varied")


def dataset_latencies(spec: DlrmDatasetSpec, batch: int = 32,
                      threads: int = 1,
                      backend: BackendLike = "modelled") -> Dict[str, float]:
    """End-to-end latency (seconds) of each technique on one dataset."""
    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
    resolved = resolve_backend(backend, uniform)

    profiler = OfflineProfiler(uniform, backend=resolved)
    profile = profiler.profile(techniques=("scan", "dhe-uniform",
                                           "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(threads,))
    thresholds = {
        variant: build_threshold_database(
            profile, dhe_technique=f"dhe-{variant}", dims=(dim,),
            batches=(batch,),
            threads_list=(threads,)).threshold(dim, batch, threads)
        for variant in ("uniform", "varied")
    }

    def technique_sum(technique: str) -> float:
        return sum(resolved.technique_latency(technique, size, dim, batch,
                                              threads)
                   for size in spec.table_sizes)

    def hybrid(varied: bool) -> float:
        threshold = thresholds["varied" if varied else "uniform"]
        allocations = allocate_by_threshold(spec.table_sizes, threshold)
        return allocation_latency(allocations, resolved, dim, batch, threads,
                                  varied=varied)

    embeddings = {
        "index_lookup": technique_sum("lookup"),
        "linear_scan": technique_sum("scan"),
        "path_oram": technique_sum("path-oram"),
        "circuit_oram": technique_sum("circuit-oram"),
        # Uniform stacks are identical across tables, so price one batch.
        "dhe_uniform": len(spec.table_sizes) * resolved.technique_latency(
            "dhe-uniform", spec.table_sizes[0], dim, batch, threads),
        "dhe_varied": technique_sum("dhe-varied"),
        "hybrid_uniform": hybrid(varied=False),
        "hybrid_varied": hybrid(varied=True),
    }
    return {name: latency + MLP_OVERHEAD_SECONDS
            for name, latency in embeddings.items()}


def run(batch: int = 32, threads: int = 1,
        backend: BackendLike = "modelled") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table7",
        title=f"DLRM end-to-end latency (ms), batch={batch}, threads={threads}",
        headers=("technique", "kaggle_ms", "kaggle_vs_circuit",
                 "terabyte_ms", "terabyte_vs_circuit"),
        notes="paper: Hybrid Varied 2.01x (Kaggle) / 2.28x (Terabyte) over "
              "Circuit ORAM",
    )
    kaggle = dataset_latencies(KAGGLE_SPEC, batch, threads, backend)
    terabyte = dataset_latencies(TERABYTE_SPEC, batch, threads, backend)
    for technique in TECHNIQUE_ORDER:
        result.add_row(
            technique,
            format_ms(kaggle[technique]),
            round(kaggle["circuit_oram"] / kaggle[technique], 3),
            format_ms(terabyte[technique]),
            round(terabyte["circuit_oram"] / terabyte[technique], 3),
        )
    return result
