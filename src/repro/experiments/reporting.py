"""Result containers and plain-text table rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class ExperimentResult:
    """A reproduced table/figure: headers + rows, paper-format."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but {len(self.headers)} headers")
        self.rows.append(values)

    def column(self, header: str) -> List[Any]:
        if header not in self.headers:
            raise KeyError(f"no column {header!r}; have {list(self.headers)}")
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-ready view (used by the registry CLI's ``--json`` dump)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def render(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[str(h) for h in self.headers]]
        cells += [[_fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells)
                  for i in range(len(self.headers))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for row_index, row in enumerate(cells):
            line = "  ".join(value.rjust(width)
                             for value, width in zip(row, widths))
            lines.append(line)
            if row_index == 0:
                lines.append("-" * len(line))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_ms(seconds: float) -> float:
    """Seconds → milliseconds, rounded for table display."""
    return round(seconds * 1e3, 3)


def format_mb(num_bytes: float) -> float:
    return round(num_bytes / (1024 * 1024), 2)
