"""Migration harness: live epoch-to-epoch table migration, gated.

Not a paper figure — the scaling extension. Runs the
:mod:`repro.cluster.migrate` sweep (node add/remove x replication x step
size under the Fig 13 Terabyte workload) and tabulates per-cell move-set
size, migration-window p99 inflation, and the audit / zero-loss /
incrementality gate verdicts.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0, num_requests: int = 384,
        rate_rps: float = 2000.0) -> ExperimentResult:
    from repro.cluster.migrate import run_migration

    report = run_migration(seed=seed, num_requests=num_requests,
                           rate_rps=rate_rps)
    result = ExperimentResult(
        experiment_id="migrate",
        title=f"{report['spec']}: live plan-epoch migration (seed={seed}, "
              f"{num_requests} requests @ {rate_rps:.0f} rps, "
              f"{report['nodes_before']}<->{report['nodes_after']} nodes)",
        headers=("direction", "nodes", "R", "step", "moved", "bound",
                 "steps", "shed", "window_p99_ms", "inflation"),
    )
    for cell in report["cells"]:
        result.add_row(cell["direction"],
                       f"{cell['nodes_before']}->{cell['nodes_after']}",
                       cell["replication"], cell["step_size"],
                       cell["tables_moved"], cell["move_bound"],
                       cell["num_steps"], cell["shed_requests"],
                       f"{cell['window_p99_seconds'] * 1e3:.3f}",
                       f"{cell['p99_inflation']:.2f}x")
    gates = report["gates"]
    failover = report["failover"]
    failover_note = (
        f"killed node {failover['victim']} during the "
        f"{failover['nodes_before']}->{failover['nodes_after']} R=2 "
        f"migration: shed={failover['shed_requests']}"
        if failover["applicable"] else "not applicable")
    result.notes = (
        f"failover: {failover_note}; gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; move order is keyed on static table ids only — every "
          "intermediate assignment replays identically under contrasting "
          "workloads, and the hot-first anti-pattern is caught")
    return result
