"""Table V: DLRM accuracy parity — table vs DHE Uniform vs DHE Varied.

Run for real on a capped-cardinality synthetic Criteo schema (training the
full-scale models is out of budget everywhere, including the paper's GPUs);
the claim under test is *parity between representations*, which is scale-
independent: all three models are trained identically and evaluated on the
same held-out generator.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.latency import DheShape
from repro.data import KAGGLE_SPEC, SyntheticCtrDataset, scaled_spec
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.table import TableEmbedding
from repro.experiments.reporting import ExperimentResult
from repro.models.dlrm import DLRM
from repro.models.training import evaluate_dlrm, train_dlrm
from repro.utils.rng import new_rng


def run(max_rows: int = 2000, steps: int = 300, batch_size: int = 128,
        eval_samples: int = 8192, k: int = 64,
        fc_sizes: Sequence[int] = (64,), seed: int = 0) -> ExperimentResult:
    spec = scaled_spec(KAGGLE_SPEC, max_rows)
    dataset_seed = new_rng(seed).integers(1 << 31)

    def make_dataset() -> SyntheticCtrDataset:
        # Fresh generator with the same seed => identical data distribution
        # and planted model for every trained variant.
        return SyntheticCtrDataset(spec, seed=int(dataset_seed))

    uniform = DheShape(k=k, fc_sizes=tuple(fc_sizes),
                       out_dim=spec.embedding_dim)

    def factory_table(size: int, dim: int) -> TableEmbedding:
        return TableEmbedding(size, dim, rng=new_rng(seed + 1))

    def factory_uniform(size: int, dim: int) -> DHEEmbedding:
        return DHEEmbedding(size, dim, shape=uniform, rng=new_rng(seed + 2))

    def factory_varied(size: int, dim: int) -> DHEEmbedding:
        return DHEEmbedding.varied(size, dim, uniform, rng=new_rng(seed + 3))

    variants = {
        "Table": factory_table,
        "DHE Uniform": factory_uniform,
        "DHE Varied": factory_varied,
    }

    result = ExperimentResult(
        experiment_id="table5",
        title=f"DLRM accuracy parity on {spec.name} "
              f"({steps} steps, batch {batch_size})",
        headers=("representation", "accuracy", "auc"),
        notes="paper: 78.82% for all three on Kaggle — the claim is parity, "
              "not the absolute value (synthetic data here)",
    )
    for name, factory in variants.items():
        dataset = make_dataset()
        model = DLRM(spec, factory,
                     bottom_sizes=(spec.num_dense, 64, spec.embedding_dim),
                     top_hidden_sizes=(64,), rng=seed + 4)
        train_dlrm(model, dataset, steps=steps, batch_size=batch_size,
                   lr=2e-3)
        metrics = evaluate_dlrm(model, make_dataset(),
                                num_samples=eval_samples)
        result.add_row(name, round(metrics["accuracy"], 4),
                       round(metrics["auc"], 4))
    return result
