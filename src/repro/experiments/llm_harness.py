"""LLM serving harness: the three-pool oblivious pipeline, gated.

Not a paper figure — the serving extension. Runs the
:mod:`repro.llm.bench` ramp (tokenize / prefill / decode as independently
autoscaled pools over the audited plan-epoch machinery) and tabulates the
per-interval node counts, decode latency and scale decisions alongside
the gate verdicts.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0) -> ExperimentResult:
    from repro.llm.bench import run_bench

    report = run_bench(seed=seed)
    spec = report["spec"]
    result = ExperimentResult(
        experiment_id="llm",
        title=f"oblivious LLM serving: tokenize/prefill/decode pools "
              f"(seed={seed}, {report['ticks']} ticks x "
              f"{report['interval_seconds']:.2f}s, "
              f"prompt={spec['prompt_tokens']} new={spec['new_tokens']})",
        headers=("tick", "rate", "tok", "pre", "dec", "decode_p99_ms",
                 "decisions"),
    )
    for cell in report["intervals"]:
        nodes = cell["nodes"]
        decisions = []
        for name in ("tokenize", "prefill", "decode"):
            decision = cell["pools"][name]["decision"]
            if decision["action"] in ("scale-up", "scale-down"):
                decisions.append(
                    f"{name} {decision['action']} "
                    f"{decision['current_nodes']}->"
                    f"{decision['target_nodes']}")
        decode = cell["pipeline"]["stages"]["decode"]
        result.add_row(cell["tick"], f"{cell['rate_rps']:.0f}",
                       nodes["tokenize"], nodes["prefill"],
                       nodes["decode"],
                       f"{decode['p99_seconds'] * 1e3:.2f}",
                       "; ".join(decisions) or "-")
    gates = report["gates"]
    events = {name: pool["events"] for name, pool in
              report["pools"].items()}
    result.notes = (
        f"tokens/sec={report['tokens_per_second']:.0f} (floor "
        f"{report['tokens_per_second_floor']:.0f}); decode p99/token="
        f"{report['decode_p99_per_token_seconds'] * 1e3:.3f} ms (ceiling "
        f"{report['decode_p99_per_token_ceiling'] * 1e3:.3f} ms); events: "
        + ", ".join(f"{name} up={event['scale_up_events']} "
                    f"down={event['scale_down_events']}"
                    for name, event in events.items())
        + "; gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; each pool scales on its own secret-free signal plane, all "
          "reshapes ride the shared audited migration path, and the "
          "boundary-leaking tokenizer + hot-load-chasing controller are "
          "both caught")
    return result
