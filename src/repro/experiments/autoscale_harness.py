"""Autoscale harness: the self-healing elastic storm, gated.

Not a paper figure — the scaling extension. Runs the
:mod:`repro.cluster.autoscale` storm (load ramp to saturation, node kill
in the trough, scale-up / heal / scale-down through audited plan-epoch
migrations) and tabulates the per-interval signals, decisions and gate
verdicts.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0) -> ExperimentResult:
    from repro.cluster.autoscale.sim import run_autoscale

    report = run_autoscale(seed=seed)
    result = ExperimentResult(
        experiment_id="autoscale",
        title=f"{report['spec']}: self-healing elastic autoscaling "
              f"(seed={seed}, {report['ticks']} ticks x "
              f"{report['interval_seconds']:.2f}s, "
              f"R={report['replication']}, kill@t{report['kill_tick']})",
        headers=("tick", "kind", "offered", "achieved", "util", "nodes",
                 "p99_ms", "shed", "decision"),
    )
    for cell in report["intervals"]:
        signals = cell["signals"]
        decision = cell["decision"]
        verdict = decision["action"]
        if decision["action"] in ("scale-up", "scale-down"):
            verdict += (f" {decision['current_nodes']}->"
                        f"{decision['target_nodes']}")
        elif decision["action"] == "blocked":
            verdict += f" ({decision['reason']})"
        result.add_row(cell["tick"],
                       cell["kind"] + (" KILL" if cell["killed"] else ""),
                       f"{signals['offered_rps']:.0f}",
                       f"{signals['achieved_rps']:.0f}",
                       f"{signals['utilisation']:.2f}",
                       signals["current_nodes"],
                       f"{cell['p99_seconds'] * 1e3:.2f}",
                       cell["shed_requests"], verdict)
    events = report["events"]
    gates = report["gates"]
    result.notes = (
        f"events: up={events['scale_up_events']} "
        f"down={events['scale_down_events']} "
        f"heal={events['heal_events']}; converged@t"
        f"{report['converged_tick']} (peak@t{report['first_peak_tick']}); "
        f"final nodes={report['final_nodes']}; gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; scale decisions read secret-free aggregates only — the "
          "decision trace replays byte-identically under contrasting "
          "skews, and the hot-load-chasing anti-pattern is caught")
    return result
