"""Fig 5: LLM token-embedding latency vs embedding dimension.

Fixed vocabulary 50257 (GPT-2), 16 threads, embedding-generation batch
sizes spanning decode (1) to large prefill (3072); DHE sized at 2x the
embedding dimension (k and internal FCs), 4 layers, per §VI-A3.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import (
    DheShape,
    dhe_latency,
    linear_scan_latency,
    oram_latency,
)
from repro.experiments.reporting import ExperimentResult, format_ms

GPT2_VOCAB = 50257


def llm_dhe_shape(embed_dim: int) -> DheShape:
    """DHE for an LLM: k = 2*dim, 3 hidden FCs of 2*dim, output dim."""
    width = 2 * embed_dim
    return DheShape(k=width, fc_sizes=(width, width, width), out_dim=embed_dim)


def run(dims: Sequence[int] = (768, 1024, 2048, 4096, 8192),
        batches: Sequence[int] = (1, 8, 256, 3072),
        vocab_size: int = GPT2_VOCAB, threads: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title=f"LLM embedding latency (ms/batch), vocab={vocab_size}, "
              f"threads={threads}",
        headers=("embed_dim", "batch", "linear_scan_ms", "path_oram_ms",
                 "circuit_oram_ms", "dhe_ms"),
        notes="paper shape: DHE wins at prefill-scale batches; Circuit ORAM "
              "competitive only at decode-scale batches",
    )
    for dim in dims:
        shape = llm_dhe_shape(dim)
        for batch in batches:
            result.add_row(
                dim, batch,
                format_ms(linear_scan_latency(vocab_size, dim, batch, threads)),
                format_ms(oram_latency("path", vocab_size, dim, batch, threads)),
                format_ms(oram_latency("circuit", vocab_size, dim, batch,
                                       threads)),
                format_ms(dhe_latency(shape, batch, threads)),
            )
    return result
