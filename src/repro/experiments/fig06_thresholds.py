"""Fig 6: scan/DHE switching thresholds across execution configurations.

Offline profiling (Algorithm 2 step 1) for embedding dim 64: thresholds
fall as batch size grows (DHE's batch parallelism) and rise with thread
count (scan's multi-thread cache reuse).
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import DLRM_DHE_UNIFORM_64
from repro.experiments.reporting import ExperimentResult
from repro.hybrid import OfflineProfiler, build_threshold_database


def run(batches: Sequence[int] = (1, 8, 32, 128),
        threads_list: Sequence[int] = (1, 2, 4, 8, 16),
        dim: int = 64,
        dhe_technique: str = "dhe-uniform") -> ExperimentResult:
    profiler = OfflineProfiler(DLRM_DHE_UNIFORM_64)
    profile = profiler.profile(techniques=("scan", dhe_technique),
                               dims=(dim,), batches=batches,
                               threads_list=threads_list)
    thresholds = build_threshold_database(profile, dhe_technique=dhe_technique,
                                          dims=(dim,), batches=batches,
                                          threads_list=threads_list)
    result = ExperimentResult(
        experiment_id="fig6",
        title=f"Scan/DHE switching thresholds (table rows), dim={dim}",
        headers=("batch", "threads", "threshold_rows"),
        notes="paper: ~3300 at batch 32 / 1 thread; decreasing in batch, "
              "increasing in threads",
    )
    for key in thresholds.configurations():
        result.add_row(key.batch, key.threads,
                       round(thresholds.thresholds[key]))
    return result
