"""Fig 13: latency-vs-throughput under increasing model co-location.

DHE Varied vs Hybrid Varied fleets of Kaggle/Terabyte models; the paper's
headline: at a 20 ms SLA the hybrid lifts latency-bounded throughput by
~1.6x (Kaggle) / ~1.4x (Terabyte) over all-DHE. The bench routes through
the serving :class:`~repro.serving.engine.ExecutionEngine`: the engine
resolves the live allocation (Algorithm 3) and hands replica fleets to its
:class:`~repro.serving.dispatcher.Dispatcher`.
"""

from __future__ import annotations

from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.hybrid import (
    OfflineProfiler,
    allocate_by_threshold,
    build_threshold_database,
    count_scan_features,
)
from repro.serving import ExecutionEngine, ServingConfig

SLA_SECONDS = 0.020


def run(spec: DlrmDatasetSpec = TERABYTE_SPEC, batch: int = 32,
        max_copies: int = 28) -> ExperimentResult:
    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64

    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(1,))
    thresholds = build_threshold_database(
        profile, dhe_technique="dhe-varied", dims=(dim,), batches=(batch,),
        threads_list=(1,))

    engine = ExecutionEngine(spec.table_sizes, dim, uniform, thresholds,
                             varied=True)
    config = ServingConfig(batch_size=batch, threads=1,
                           sla_seconds=SLA_SECONDS)

    hybrid_alloc = engine.allocations(config)
    all_dhe_alloc = allocate_by_threshold(spec.table_sizes, 0.0)

    hybrid_dispatcher = engine.dispatcher(config, hybrid_alloc)
    dhe_dispatcher = engine.dispatcher(config, all_dhe_alloc)

    result = ExperimentResult(
        experiment_id="fig13",
        title=f"{spec.name}: co-located latency/throughput "
              f"(batch={batch}, SLA={SLA_SECONDS * 1e3:.0f} ms)",
        headers=("copies", "dhe_varied_ms", "dhe_varied_ips",
                 "hybrid_varied_ms", "hybrid_varied_ips"),
    )
    hybrid_sweep = hybrid_dispatcher.sweep(max_copies)
    dhe_sweep = dhe_dispatcher.sweep(max_copies)
    for (copies, dhe_lat, dhe_tp), (_, hyb_lat, hyb_tp) in zip(dhe_sweep,
                                                               hybrid_sweep):
        result.add_row(copies, format_ms(dhe_lat), round(dhe_tp),
                       format_ms(hyb_lat), round(hyb_tp))

    dhe_bounded = dhe_dispatcher.sla_bounded_throughput(SLA_SECONDS,
                                                        max_copies)
    hybrid_bounded = hybrid_dispatcher.sla_bounded_throughput(SLA_SECONDS,
                                                              max_copies)
    gain = hybrid_bounded / dhe_bounded if dhe_bounded else float("inf")
    result.notes = (f"SLA-bounded throughput: DHE {dhe_bounded:.0f} ips, "
                    f"Hybrid {hybrid_bounded:.0f} ips ({gain:.2f}x; paper "
                    f"1.4x Terabyte / 1.6x Kaggle); "
                    f"{count_scan_features(hybrid_alloc)}/{spec.num_sparse} "
                    f"features on scan")
    return result
