"""Table VI: DLRM model memory footprints per representation.

Kaggle and Terabyte, full-scale table lists; the hybrid threshold comes
from the batch-32/1-thread profile like the paper's deployment default.
"""

from __future__ import annotations

from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import KAGGLE_SPEC, TERABYTE_SPEC, DlrmDatasetSpec
from repro.experiments.reporting import ExperimentResult, format_mb
from repro.hybrid import OfflineProfiler, build_threshold_database
from repro.metrics.footprint import dlrm_embedding_footprints

#: bottom+top MLP parameter bytes are negligible (<2 MB) next to the tables;
#: include a representative constant so "model" footprints are honest.
DENSE_BYTES = int(1.5 * 1024 * 1024)


def dataset_report(spec: DlrmDatasetSpec, batch: int = 32, threads: int = 1):
    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(threads,))
    threshold = build_threshold_database(
        profile, dims=(dim,), batches=(batch,),
        threads_list=(threads,)).threshold(dim, batch, threads)
    return dlrm_embedding_footprints(spec.table_sizes, dim, uniform,
                                     hybrid_threshold=int(threshold),
                                     dense_bytes=DENSE_BYTES)


def run(batch: int = 32, threads: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table6",
        title="DLRM model memory footprint (MB; % of table representation)",
        headers=("representation", "kaggle_mb", "kaggle_pct",
                 "terabyte_mb", "terabyte_pct"),
        notes="paper: Tree-ORAM ~330%; DHE/hybrid 0.3-3.3%; Hybrid Varied "
              "smallest (24.9 MB Kaggle / 36.2 MB Terabyte)",
    )
    kaggle = dataset_report(KAGGLE_SPEC, batch, threads)
    terabyte = dataset_report(TERABYTE_SPEC, batch, threads)
    for name in ("table", "tree_oram", "dhe_uniform", "dhe_varied",
                 "hybrid_uniform", "hybrid_varied"):
        kaggle_bytes = getattr(kaggle, name)
        terabyte_bytes = getattr(terabyte, name)
        result.add_row(
            name,
            format_mb(kaggle_bytes),
            round(100 * kaggle_bytes / kaggle.table, 2),
            format_mb(terabyte_bytes),
            round(100 * terabyte_bytes / terabyte.table, 2),
        )
    return result
