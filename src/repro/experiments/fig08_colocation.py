"""Fig 8: latency inflation as copies of one technique are co-located.

Synthetic single-table models (the paper's setup) of one technique each;
co-location counts 1..24 on the 28-core platform.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import (
    DLRM_DHE_UNIFORM_64,
    colocated_latencies,
    dhe_demand,
    oram_demand,
    scan_demand,
)
from repro.experiments.reporting import ExperimentResult, format_ms


def run(table_size: int = 1_000_000, dim: int = 64, batch: int = 32,
        copies_list: Sequence[int] = (1, 4, 8, 16, 24)) -> ExperimentResult:
    demands = {
        "scan": scan_demand(table_size, dim, batch),
        "dhe": dhe_demand(DLRM_DHE_UNIFORM_64, batch),
        "circuit": oram_demand("circuit", table_size, dim, batch),
    }
    result = ExperimentResult(
        experiment_id="fig8",
        title=f"Per-model latency under co-location (table={table_size}, "
              f"dim={dim}, batch={batch})",
        headers=("copies", "scan_ms", "dhe_ms", "circuit_oram_ms"),
        notes="paper shape: bandwidth-hungry scan degrades fastest; "
              "compute-bound DHE degrades mildly",
    )
    for copies in copies_list:
        row = [copies]
        for technique in ("scan", "dhe", "circuit"):
            latencies = colocated_latencies([demands[technique]] * copies)
            row.append(format_ms(max(latencies)))
        result.add_row(*row)
    return result
