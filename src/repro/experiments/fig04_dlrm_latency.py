"""Fig 4: secure embedding generation latency vs table size (DLRM).

Batch 32, 1 thread, embedding dims 16 and 64; techniques: linear scan,
Path ORAM, Circuit ORAM, DHE Uniform (k=1024), DHE Varied.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.costmodel import (
    DLRM_DHE_UNIFORM_16,
    DLRM_DHE_UNIFORM_64,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    oram_latency,
)
from repro.experiments.reporting import ExperimentResult, format_ms

DEFAULT_SIZES: Tuple[int, ...] = (100, 1000, 10_000, 100_000, 1_000_000,
                                  10_000_000)


def run(dims: Sequence[int] = (16, 64),
        sizes: Sequence[int] = DEFAULT_SIZES,
        batch: int = 32, threads: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title=f"Embedding generation latency (ms/batch), batch={batch}, "
              f"threads={threads}",
        headers=("dim", "table_size", "linear_scan_ms", "path_oram_ms",
                 "circuit_oram_ms", "dhe_uniform_ms", "dhe_varied_ms"),
        notes="paper shape: scan cheapest for small tables, DHE flat, "
              "Circuit ORAM the best traditional scheme for large tables",
    )
    for dim in dims:
        uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
        for size in sizes:
            result.add_row(
                dim, size,
                format_ms(linear_scan_latency(size, dim, batch, threads)),
                format_ms(oram_latency("path", size, dim, batch, threads)),
                format_ms(oram_latency("circuit", size, dim, batch, threads)),
                format_ms(dhe_latency(uniform, batch, threads)),
                format_ms(dhe_latency(dhe_varied_shape(size, uniform),
                                      batch, threads)),
            )
    return result
