"""Secure-online-training harness: batched lookahead ORAM training, gated.

Not a paper figure — the online-training extension. Runs the
:mod:`repro.training.bench` pipeline (DynamicBatcher lookahead -> batched
lookahead ORAM -> ``repro.nn`` autograd -> oblivious gradient write-back)
for Path and Circuit ORAM tables in batched and sequential arms, and
tabulates per-scheme loss trajectories, amortization factors, and stash
high-water marks, plus the gate verdicts (loss decrease, position-map and
bucket-I/O amortization, bit-exact batched-vs-sequential value parity, the
exact/structural leakage audits, and the sequential-leaking-batcher
negative control being caught).
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0) -> ExperimentResult:
    from repro.training.bench import run_bench

    report = run_bench(seed=seed)
    result = ExperimentResult(
        experiment_id="train",
        title=f"secure online training (seed={seed}, {report['steps']} "
              f"steps x batch {report['batch_size']})",
        headers=("scheme", "arm", "loss_first", "loss_last",
                 "posmap_ops/acc", "bucket_io/acc", "stash_hw"),
    )
    for scheme, data in report["schemes"].items():
        for arm in ("batched", "sequential"):
            summary = data[arm]
            result.add_row(
                scheme, arm,
                f"{summary['first_window_loss']:.4f}",
                f"{summary['last_window_loss']:.4f}",
                f"{summary['posmap_ops_per_access']:.1f}",
                f"{summary['bucket_io_per_access']:.2f}",
                summary["stash_high_water"])
    gates = report["gates"]
    amortization = ", ".join(
        f"{scheme} posmap x{data['posmap_amortization']:.2f} "
        f"bucket-io x{data['bucket_io_amortization']:.2f}"
        for scheme, data in report["schemes"].items())
    result.notes = (
        f"amortization at batch {report['batch_size']}: {amortization}; "
        "gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; the batched arm is bit-identical in losses and final table "
          "contents to the sequential arm, and gradient write-backs ride "
          "the same audited lookahead batch as the forward reads")
    return result
