"""Fig 12: end-to-end DLRM latency as the batch size grows.

The hybrid scales better than Circuit ORAM because ORAM accesses are
sequential per query while DHE amortises its weights over the batch —
the paper reports the advantage widening to 2.61x/3.08x at batch 128.
"""

from __future__ import annotations

from typing import Sequence

from repro.data import KAGGLE_SPEC, TERABYTE_SPEC
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.experiments.table07_e2e_latency import dataset_latencies
from repro.serving.backends import BackendLike


def run(batches: Sequence[int] = (1, 8, 32, 128),
        threads: int = 1,
        backend: BackendLike = "modelled") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig12",
        title="End-to-end DLRM latency vs batch size (ms)",
        headers=("dataset", "batch", "circuit_oram_ms", "dhe_varied_ms",
                 "hybrid_varied_ms", "hybrid_speedup_vs_circuit"),
        notes="paper: hybrid advantage grows with batch "
              "(2.61x Kaggle / 3.08x Terabyte at batch 128)",
    )
    for spec in (KAGGLE_SPEC, TERABYTE_SPEC):
        for batch in batches:
            latencies = dataset_latencies(spec, batch, threads, backend)
            result.add_row(
                spec.name, batch,
                format_ms(latencies["circuit_oram"]),
                format_ms(latencies["dhe_varied"]),
                format_ms(latencies["hybrid_varied"]),
                round(latencies["circuit_oram"] / latencies["hybrid_varied"], 2),
            )
    return result
