"""Table VIII: the Meta-2022-scale DLRM — embedding latency and footprint.

788 synthetic tables up to 4e7 rows (dim 64, batch 32, 1 thread); latency
per technique plus the footprint blow-up/reduction the paper highlights
(ORAM impractical at ~3 TB; Hybrid Varied ~1.2 GB, >2500x smaller).
"""

from __future__ import annotations

from repro.costmodel import (
    DLRM_DHE_UNIFORM_64,
    dhe_bytes,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    lookup_latency,
    oram_latency,
    table_bytes,
    tree_oram_bytes,
)
from repro.data import META_EMBEDDING_DIM, meta_table_sizes
from repro.experiments.reporting import ExperimentResult, format_mb, format_ms
from repro.hybrid import OfflineProfiler, build_threshold_database


def run(batch: int = 32, threads: int = 1, seed: int = 2022) -> ExperimentResult:
    sizes = meta_table_sizes(seed=seed)
    dim = META_EMBEDDING_DIM
    uniform = DLRM_DHE_UNIFORM_64

    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(threads,))
    threshold = build_threshold_database(
        profile, dims=(dim,), batches=(batch,),
        threads_list=(threads,)).threshold(dim, batch, threads)

    def totals(technique: str):
        latency = 0.0
        memory = 0
        for size in sizes:
            varied = dhe_varied_shape(size, uniform)
            if technique == "index_lookup":
                latency += lookup_latency(size, dim, batch, threads)
                memory += table_bytes(size, dim)
            elif technique == "linear_scan":
                latency += linear_scan_latency(size, dim, batch, threads)
                memory += table_bytes(size, dim)
            elif technique == "path_oram":
                latency += oram_latency("path", size, dim, batch, threads)
                memory += tree_oram_bytes(size, dim, scheme="path")
            elif technique == "circuit_oram":
                latency += oram_latency("circuit", size, dim, batch, threads)
                memory += tree_oram_bytes(size, dim, scheme="circuit")
            elif technique == "dhe_uniform":
                latency += dhe_latency(uniform, batch, threads)
                memory += dhe_bytes(uniform)
            elif technique == "dhe_varied":
                latency += dhe_latency(varied, batch, threads)
                memory += dhe_bytes(varied)
            elif technique in ("hybrid_uniform", "hybrid_varied"):
                if size <= threshold:
                    latency += linear_scan_latency(size, dim, batch, threads)
                    memory += table_bytes(size, dim)
                else:
                    shape = (varied if technique == "hybrid_varied"
                             else uniform)
                    latency += dhe_latency(shape, batch, threads)
                    memory += dhe_bytes(shape)
            else:
                raise ValueError(technique)
        return latency, memory

    result = ExperimentResult(
        experiment_id="table8",
        title=f"Meta-scale DLRM ({len(sizes)} tables): embedding latency "
              f"and footprint (batch={batch}, threads={threads})",
        headers=("technique", "latency_ms", "vs_circuit", "memory_mb",
                 "pct_of_table"),
        notes="paper: Circuit 1347 ms; Hybrid Varied 560 ms (2.40x) and "
              "~1.2 GB vs 910 GB tables",
    )
    circuit_latency, _ = totals("circuit_oram")
    table_memory = totals("index_lookup")[1]
    for technique in ("index_lookup", "linear_scan", "path_oram",
                      "circuit_oram", "dhe_uniform", "dhe_varied",
                      "hybrid_uniform", "hybrid_varied"):
        latency, memory = totals(technique)
        result.add_row(technique, format_ms(latency),
                       round(circuit_latency / latency, 2),
                       format_mb(memory),
                       round(100 * memory / table_memory, 3))
    return result
