"""§VI-D3: GPT-2 medium memory footprint per embedding scheme.

Paper: table 196.3 MB; ORAM representation 513.6 MB (+38% of the 1353.5 MB
model); DHE adds 56.0 MB (+4%).
"""

from __future__ import annotations

from repro.costmodel.latency import LLM_DHE_GPT2_MEDIUM
from repro.experiments.reporting import ExperimentResult, format_mb
from repro.metrics.footprint import gpt2_footprint


def run(vocab_size: int = 50257, embed_dim: int = 1024, num_layers: int = 24,
        context_length: int = 1024) -> ExperimentResult:
    footprint = gpt2_footprint(vocab_size, embed_dim, num_layers,
                               context_length, LLM_DHE_GPT2_MEDIUM)
    result = ExperimentResult(
        experiment_id="llm-footprint",
        title="GPT-2 medium footprint per token-embedding scheme",
        headers=("scheme", "embedding_part_mb", "model_total_mb",
                 "overhead_vs_table_pct"),
        notes="paper: table 196.3 MB, ORAM 513.6 MB (+38% model), "
              "DHE +56.0 MB (+4%)",
    )
    table_total = footprint.total("table")
    rows = (
        ("table", footprint.table, footprint.total("table")),
        ("oram (circuit)", footprint.oram_table, footprint.total("oram")),
        ("dhe (+tied head table)", footprint.dhe, footprint.total("dhe")),
    )
    for name, part, total in rows:
        result.add_row(name, format_mb(part), format_mb(total),
                       round(100 * (total - table_total) / table_total, 1))
    return result
