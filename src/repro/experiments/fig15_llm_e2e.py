"""Fig 15 (the table): GPT-2 medium prefill/decode latency per technique.

Prompt 256 tokens, 128 generated, 16 threads, inference batch sizes
{1, 8, 12}; speed-ups relative to Circuit ORAM.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.llm import GPT2_MEDIUM, LlmShape, stage_latency
from repro.experiments.reporting import ExperimentResult, format_ms

TECHNIQUES = ("lookup", "scan", "path", "circuit", "dhe")


def run(batches: Sequence[int] = (1, 8, 12), prompt_tokens: int = 256,
        threads: int = 16, shape: LlmShape = GPT2_MEDIUM) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig15",
        title=f"GPT-2 medium latency (ms): prefill (TTFT) and decode (TBT), "
              f"prompt={prompt_tokens}, threads={threads}",
        headers=("batch", "stage", "index_lookup", "linear_scan", "path_oram",
                 "circuit_oram", "dhe", "dhe_vs_circuit"),
        notes="paper: DHE beats Circuit ORAM on prefill (up to 1.32x) and at "
              "batched decode (up to 1.07x); Circuit edges decode at batch 1",
    )
    for batch in batches:
        for stage in ("prefill", "decode"):
            latencies = {
                technique: stage_latency(technique, stage, shape, batch,
                                         prompt_tokens, threads)
                for technique in TECHNIQUES
            }
            result.add_row(
                batch, stage,
                format_ms(latencies["lookup"]),
                format_ms(latencies["scan"]),
                format_ms(latencies["path"]),
                format_ms(latencies["circuit"]),
                format_ms(latencies["dhe"]),
                round(latencies["circuit"] / latencies["dhe"], 3),
            )
    return result
