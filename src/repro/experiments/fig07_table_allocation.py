"""Fig 7: which real DLRM tables fall inside the hybrid-eligible band.

Tables below every profiled threshold always linear-scan; above every
threshold always use DHE; the band in between flips with the execution
configuration (the paper's red points: 3 tables for Kaggle, 6 for
Terabyte).
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import KAGGLE_SPEC, TERABYTE_SPEC
from repro.experiments.reporting import ExperimentResult
from repro.hybrid import (
    OfflineProfiler,
    build_threshold_database,
    hybrid_eligible_range,
)


def run(batches: Sequence[int] = (1, 8, 32, 128),
        threads_list: Sequence[int] = (1, 2, 4, 8, 16)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="Per-dataset table allocation vs the hybrid-eligible band",
        headers=("dataset", "band_low", "band_high", "always_scan",
                 "hybrid_eligible", "always_dhe"),
        notes="paper: Kaggle 3 eligible tables (16 scan / 7 DHE fixed); "
              "Terabyte 6 eligible (10 scan / 9 DHE fixed at the extremes)",
    )
    for spec, uniform in ((KAGGLE_SPEC, DLRM_DHE_UNIFORM_16),
                          (TERABYTE_SPEC, DLRM_DHE_UNIFORM_64)):
        dim = spec.embedding_dim
        profiler = OfflineProfiler(uniform)
        profile = profiler.profile(techniques=("scan", "dhe-uniform"),
                                   dims=(dim,), batches=batches,
                                   threads_list=threads_list)
        thresholds = build_threshold_database(
            profile, dims=(dim,), batches=batches, threads_list=threads_list)
        low, high = hybrid_eligible_range(thresholds, dim)
        always_scan = sum(1 for size in spec.table_sizes if size <= low)
        eligible = sum(1 for size in spec.table_sizes if low < size <= high)
        always_dhe = sum(1 for size in spec.table_sizes if size > high)
        result.add_row(spec.name, round(low), round(high), always_scan,
                       eligible, always_dhe)
    return result
