"""Fig 2: the storage-vs-computation taxonomy with normalized performance.

The figure annotates each method with its normalized DLRM latency at batch
32 (lookup = 1.0) and qualitative memory footprint; we regenerate both
columns from the calibrated model for a representative large table.
"""

from __future__ import annotations

from repro.costmodel import (
    DLRM_DHE_UNIFORM_64,
    dhe_bytes,
    dhe_latency,
    lookup_latency,
    table_bytes,
)
from repro.experiments.reporting import ExperimentResult


def run(table_size: int = 1_000_000, dim: int = 64,
        batch: int = 32) -> ExperimentResult:
    lookup = lookup_latency(table_size, dim, batch)
    dhe = dhe_latency(DLRM_DHE_UNIFORM_64, batch)
    raw_bytes = table_bytes(table_size, dim)
    dhe_mem = dhe_bytes(DLRM_DHE_UNIFORM_64)

    result = ExperimentResult(
        experiment_id="fig2",
        title=f"Embedding generation taxonomy (table={table_size}, "
              f"dim={dim}, batch={batch})",
        headers=("method", "kind", "normalized_latency", "memory_mb",
                 "secure"),
        notes="paper Fig 2: storage methods are fast but big and leaky; "
              "computation (DHE) is slower but small and oblivious",
    )
    result.add_row("table lookup", "storage", 1.0,
                   round(raw_bytes / 2**20, 1), "no")
    result.add_row("DHE", "computation", round(dhe / lookup, 1),
                   round(dhe_mem / 2**20, 1), "yes")
    return result
