"""The experiment registry: every paper table/figure, runnable by id."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    autoscale_harness,
    cache_harness,
    chaos_harness,
    cluster_harness,
    fig02_taxonomy,
    fig03_attack,
    fig04_dlrm_latency,
    fig05_llm_latency,
    fig06_thresholds,
    fig07_table_allocation,
    fig08_colocation,
    fig09_allocation_sweep,
    fig10_zerotrace,
    fig11_threshold_sweep,
    fig12_batch_scaling,
    fig13_throughput,
    fig14_llm_finetune,
    fig15_llm_e2e,
    lazy_harness,
    llm_footprint,
    llm_harness,
    migration_harness,
    table01_complexity,
    table02_security,
    table05_accuracy,
    table06_footprint,
    table07_e2e_latency,
    table08_meta,
    train_harness,
)
from repro.experiments.reporting import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig2": fig02_taxonomy.run,
    "fig3": fig03_attack.run,
    "fig4": fig04_dlrm_latency.run,
    "fig5": fig05_llm_latency.run,
    "fig6": fig06_thresholds.run,
    "fig7": fig07_table_allocation.run,
    "fig8": fig08_colocation.run,
    "fig9": fig09_allocation_sweep.run,
    "fig10": fig10_zerotrace.run,
    "fig11": fig11_threshold_sweep.run,
    "fig12": fig12_batch_scaling.run,
    "fig13": fig13_throughput.run,
    "fig14": fig14_llm_finetune.run,
    "fig15": fig15_llm_e2e.run,
    "table1": table01_complexity.run,
    "table2": table02_security.run,
    "table5": table05_accuracy.run,
    "table6": table06_footprint.run,
    "table7": table07_e2e_latency.run,
    "table8": table08_meta.run,
    "llm-footprint": llm_footprint.run,
    "cache": cache_harness.run,
    "chaos": chaos_harness.run,
    "cluster": cluster_harness.run,
    "lazy": lazy_harness.run,
    "migrate": migration_harness.run,
    "autoscale": autoscale_harness.run,
    "train": train_harness.run,
    "llm": llm_harness.run,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id (tagged in the telemetry stream)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}")
    from repro.telemetry.runtime import get_registry

    registry = get_registry()
    with registry.span("experiment.run", experiment=experiment_id):
        result = EXPERIMENTS[experiment_id](**kwargs)
    registry.counter("experiments.runs_total").inc()
    registry.counter(f"experiments.{experiment_id}.runs_total").inc()
    return result


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def main(argv=None) -> int:
    """CLI: ``python -m repro.experiments.registry [id ...] [--json PATH]``.

    ``--json`` dumps every result plus the run's telemetry snapshot — the
    CI smoke job archives this file as a workflow artifact.
    """
    import argparse

    from repro.telemetry.export import write_json
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.runtime import set_registry

    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--json", metavar="PATH",
                        help="dump results + telemetry snapshot as JSON")
    args = parser.parse_args(argv)
    ids = args.ids or list_experiments()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        results = []
        for experiment_id in ids:
            result = run_experiment(experiment_id)
            print(result.render())
            print()
            results.append(result.to_dict())
        if args.json:
            write_json(registry, args.json,
                       extra={"results": results})
    finally:
        set_registry(previous)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
