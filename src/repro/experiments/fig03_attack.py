"""Fig 3: PRIME+PROBE recovers the victim's embedding index.

Paper setup: 256-entry table, dim 64, true index 2, 25 primed sets, 10
measurements averaged. The protected (linear-scan) victim is also run to
show the defence flattens the signal.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult
from repro.sidechannel import (
    CacheConfig,
    EmbeddingLookupVictim,
    PrimeProbeAttacker,
    SetAssociativeCache,
)


def run(victim_index: int = 2, monitored_sets: int = 25, repeats: int = 10,
        num_rows: int = 256, embedding_dim: int = 64,
        noise_cycles: float = 3.0, seed: int = 7) -> ExperimentResult:
    cache = SetAssociativeCache(CacheConfig())
    victim = EmbeddingLookupVictim(cache, num_rows=num_rows,
                                   embedding_dim=embedding_dim)
    attacker = PrimeProbeAttacker(cache, victim,
                                  monitored_indices=range(monitored_sets),
                                  noise_cycles=noise_cycles, rng=seed)

    vulnerable = attacker.run_trials(victim_index, repeats=repeats)
    protected = attacker.run_trials(victim_index, repeats=repeats,
                                    victim_op=victim.lookup_linear_scan)

    result = ExperimentResult(
        experiment_id="fig3",
        title="Eviction-set probe latency per monitored index "
              f"(victim index = {victim_index})",
        headers=("eviction_set", "latency_vulnerable_cycles",
                 "latency_linear_scan_cycles"),
        notes=(f"vulnerable lookup: recovered index "
               f"{vulnerable.recovered_index} "
               f"({'SUCCESS' if vulnerable.success else 'fail'}); "
               f"linear scan leaves all sets indistinguishable"),
    )
    for index in range(monitored_sets):
        result.add_row(index,
                       round(vulnerable.mean_latencies[index], 1),
                       round(protected.mean_latencies[index], 1))
    return result
