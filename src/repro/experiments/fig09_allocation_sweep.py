"""Fig 9: mixing DHE and linear scan across 24 co-located models.

For a fixed fleet of 24 single-table models, sweep how many use DHE (the
rest linear-scan) across table sizes; small tables favour all-scan, large
ones all-DHE, with the crossover near (but above) the single-model
threshold — the paper reports 4500 vs 3300.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import DLRM_DHE_UNIFORM_64
from repro.experiments.reporting import ExperimentResult, format_ms
from repro.hybrid import mixed_allocation_latency


def run(table_sizes: Sequence[int] = (1000, 2000, 4500, 8000, 32_000,
                                      1_000_000),
        total_models: int = 24, dim: int = 64,
        batch: int = 32,
        dhe_counts: Sequence[int] = (0, 6, 12, 18, 24)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title=f"Mean latency vs #DHE models out of {total_models} co-located",
        headers=("table_size", *[f"dhe={count}" for count in dhe_counts]),
        notes="values in ms; paper shape: all-scan best below ~4500 rows, "
              "all-DHE best above",
    )
    for size in table_sizes:
        row = [size]
        for count in dhe_counts:
            latency = mixed_allocation_latency(
                size, dim, total_models, count, DLRM_DHE_UNIFORM_64, batch)
            row.append(format_ms(latency))
        result.add_row(*row)
    return result


def colocated_crossover(total_models: int = 24, dim: int = 64,
                        batch: int = 32) -> float:
    """Table size where all-DHE starts beating all-scan under co-location."""
    low, high = 100, 10_000_000
    while high / low > 1.05:
        mid = int((low * high) ** 0.5)
        all_scan = mixed_allocation_latency(mid, dim, total_models, 0,
                                            DLRM_DHE_UNIFORM_64, batch)
        all_dhe = mixed_allocation_latency(mid, dim, total_models,
                                           total_models,
                                           DLRM_DHE_UNIFORM_64, batch)
        if all_scan <= all_dhe:
            low = mid
        else:
            high = mid
    return float((low * high) ** 0.5)
