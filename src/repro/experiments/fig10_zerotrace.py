"""Fig 10: ZeroTrace optimization levels — single-lookup ORAM latency.

Three builds per scheme: ZT-Original (context-switching controller),
ZT-Gramine (whole tree inside the enclave), ZT-Gramine-Opt (recursion
enabled + inlined cmov). Our executable ORAM corresponds to the -Opt level;
the other levels apply the paper's measured reduction factors (§V-A1).
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel import oram_latency, zerotrace_variant_factor
from repro.experiments.reporting import ExperimentResult

VARIANTS = ("zt-original", "zt-gramine", "zt-gramine-opt")


def run(sizes: Sequence[int] = (10_000, 100_000, 1_000_000, 10_000_000),
        dim: int = 64) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title=f"Single ORAM lookup latency (us), dim={dim}",
        headers=("table_size", "scheme", *VARIANTS),
        notes="paper: Gramine cuts Original by 20% (Path) / 60% (Circuit); "
              "Opt cuts a further 29% / 54%",
    )
    for size in sizes:
        for scheme in ("path", "circuit"):
            base = oram_latency(scheme, size, dim, batch=1)
            row = [size, scheme]
            for variant in VARIANTS:
                factor = zerotrace_variant_factor(scheme, variant)
                row.append(round(base * factor * 1e6, 1))
            result.add_row(*row)
    return result
