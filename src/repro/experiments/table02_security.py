"""Table II: the security matrix, computed rather than asserted.

For each embedding generation technique, the data-access column is decided
by actually running the implementation under the memory tracer and
comparing traces across secrets; the control-flow column reports the
mechanism the implementation uses (cmov / branchless AVX analogue / none
needed).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.dhe import DHEEmbedding
from repro.embedding.scan import LinearScanEmbedding
from repro.embedding.table import TableEmbedding
from repro.experiments.reporting import ExperimentResult
from repro.oblivious.analysis import compare_traces
from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM

N, D = 32, 8
SECRETS = [0, 9, 31]


def _table_verdict(weights: np.ndarray) -> str:
    result = compare_traces(
        lambda tracer, secret: TableEmbedding(N, D, rng=0)
        .generate_traced(np.array([secret]), tracer), SECRETS)
    return "NOT protected (trace leaks index)" if not result.oblivious \
        else "unexpectedly oblivious"

def _scan_verdict(weights: np.ndarray) -> str:
    result = compare_traces(
        lambda tracer, secret: LinearScanEmbedding(N, D, weight=weights)
        .generate_traced(np.array([secret]), tracer), SECRETS)
    return "protected (identical traces)" if result.oblivious \
        else "LEAKS"


def _oram_verdict() -> str:
    structures = []
    for secret in SECRETS:
        tracer = MemoryTracer()
        oram = CircuitORAM(N, D, rng=42, tracer=tracer)
        tracer.clear()
        oram.read(secret)
        structures.append([(e.op, e.region) for e in tracer])
    constant = all(s == structures[0] for s in structures)
    return ("protected (constant structure + random remap)"
            if constant else "LEAKS")


def _dhe_verdict() -> str:
    dhe = DHEEmbedding(N, D, k=8, fc_sizes=(8,), rng=0)
    shapes = {dhe.encoder.encode(np.array([s])).shape for s in SECRETS}
    return ("protected (no table; dense compute)" if len(shapes) == 1
            else "LEAKS")


def run() -> ExperimentResult:
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(N, D))
    result = ExperimentResult(
        experiment_id="table2",
        title="Security of embedding generation techniques (verified live)",
        headers=("technique", "secret_dependent_data_access",
                 "secret_dependent_control_flow"),
        notes="data-access column decided by trace comparison across "
              "secrets at runtime; control-flow column is the implemented "
              "mechanism (Table II)",
    )
    result.add_row("Table: non-secure", _table_verdict(weights),
                   "n/a (no such code path)")
    result.add_row("Table: ORAM", _oram_verdict(),
                   "cmov (ct_select) in posmap/stash scans")
    result.add_row("Table: Linear Scan", _scan_verdict(weights),
                   "branchless blend (oblivious_copy_row)")
    result.add_row("DHE (hash)", _dhe_verdict(),
                   "n/a (vectorised arithmetic)")
    result.add_row("DHE (FC)", "n/a (no table access)",
                   "branchless ReLU ((x+|x|)/2)")
    return result
