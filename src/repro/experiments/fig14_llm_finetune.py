"""Fig 14: LLM perplexity during finetuning — table vs DHE embedding.

Run for real at reduced scale: a base GPT is pretrained with its table
embedding on the synthetic corpus; the DHE variant inherits every
non-embedding weight (including the output head — the paper ties it to the
original table) and both are finetuned, tracking validation perplexity.
The paper's claim under test: DHE converges to within a few percent of the
table model's perplexity, and only full-model finetuning achieves that.
"""

from __future__ import annotations


from repro.costmodel.latency import DheShape
from repro.data import MarkovCorpusGenerator
from repro.embedding.dhe import DHEEmbedding
from repro.experiments.reporting import ExperimentResult
from repro.models.gpt import GPT, tiny_config
from repro.models.training import evaluate_perplexity, train_gpt


def run(vocab_size: int = 96, embed_dim: int = 32, num_layers: int = 2,
        pretrain_steps: int = 150, finetune_steps: int = 450,
        eval_every: int = 75, seq_len: int = 24, batch_size: int = 8,
        seed: int = 0) -> ExperimentResult:
    generator = MarkovCorpusGenerator(vocab_size=vocab_size, branching=6,
                                      seed=seed)
    corpus = generator.build_corpus(train_length=30_000, val_length=4_000)
    config = tiny_config(vocab_size=vocab_size, embed_dim=embed_dim,
                         num_layers=num_layers)

    base = GPT(config, rng=seed + 1)
    train_gpt(base, corpus.train_tokens, steps=pretrain_steps,
              batch_size=batch_size, seq_len=seq_len, lr=2e-3, rng=seed)

    # Table variant: continue finetuning the pretrained model.
    table_model = GPT(config, rng=seed + 1)
    table_model.load_state_dict(base.state_dict())

    # DHE variant: swap the input embedding, inherit everything else.
    dhe_embedding = DHEEmbedding(
        vocab_size, embed_dim,
        shape=DheShape(k=2 * embed_dim,
                       fc_sizes=(2 * embed_dim, 2 * embed_dim),
                       out_dim=embed_dim),
        rng=seed + 2)
    dhe_model = GPT(config, token_embedding=dhe_embedding, rng=seed + 3)
    dhe_model.load_state_dict(base.state_dict(), strict=False)

    history_table = train_gpt(table_model, corpus.train_tokens,
                              steps=finetune_steps, batch_size=batch_size,
                              seq_len=seq_len, lr=1e-3,
                              val_tokens=corpus.val_tokens,
                              eval_every=eval_every, rng=seed)
    history_dhe = train_gpt(dhe_model, corpus.train_tokens,
                            steps=finetune_steps, batch_size=batch_size,
                            seq_len=seq_len, lr=1e-3,
                            val_tokens=corpus.val_tokens,
                            eval_every=eval_every, rng=seed)

    result = ExperimentResult(
        experiment_id="fig14",
        title="Validation perplexity during finetuning (table vs DHE)",
        headers=("finetune_step", "table_ppl", "dhe_ppl"),
    )
    steps = [eval_every * (i + 1) for i in range(len(history_table.eval_metric))]
    for step, table_ppl, dhe_ppl in zip(steps, history_table.eval_metric,
                                        history_dhe.eval_metric):
        result.add_row(step, round(table_ppl, 2), round(dhe_ppl, 2))

    best_table = min(history_table.eval_metric)
    best_dhe = min(history_dhe.eval_metric)
    final_table = evaluate_perplexity(table_model, corpus.val_tokens,
                                      seq_len=seq_len)
    final_dhe = evaluate_perplexity(dhe_model, corpus.val_tokens,
                                    seq_len=seq_len)
    gap = 100 * (best_dhe - best_table) / best_table
    result.notes = (f"best ppl: table {best_table:.2f} vs DHE {best_dhe:.2f} "
                    f"({gap:+.1f}%; paper: 14.6 vs 15.0, +2.7%); final "
                    f"{final_table:.2f} / {final_dhe:.2f}; corpus floor "
                    f"~{2 ** generator.entropy_rate_bits():.2f}")
    return result
