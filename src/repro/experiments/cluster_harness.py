"""Cluster harness: sharded serving across topologies, gated.

Not a paper figure — the scaling extension. Runs the
:mod:`repro.cluster.sim` sweep (node count x replication x skew under the
Fig 13 Terabyte workload) and tabulates per-topology throughput, p99,
availability, and the placement-audit / failover gate verdicts.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0, num_requests: int = 512,
        rate_rps: float = 2000.0) -> ExperimentResult:
    from repro.cluster.sim import run_cluster

    report = run_cluster(seed=seed, num_requests=num_requests,
                         rate_rps=rate_rps)
    result = ExperimentResult(
        experiment_id="cluster",
        title=f"{report['spec']}: sharded oblivious serving (seed={seed}, "
              f"{num_requests} requests @ {rate_rps:.0f} rps)",
        headers=("nodes", "R", "capacity_rps", "achieved_rps", "p99_ms",
                 "availability", "shed", "shards"),
    )
    for cell in report["cells"]:
        result.add_row(cell["nodes"], cell["replication"],
                       f"{cell['capacity_rps']:.0f}",
                       f"{cell['cluster_throughput_rps']:.0f}",
                       f"{cell['p99_seconds'] * 1e3:.3f}",
                       f"{cell['availability']:.4f}",
                       cell["shed_requests"], cell["num_shards"])
    gates = report["gates"]
    failover = report["failover"]
    failover_note = (
        f"killed node {failover['victim']} of {failover['nodes']} (R=2): "
        f"shed={failover['shed_requests']}"
        if failover["applicable"] else "not applicable")
    result.notes = (
        f"scaling {report['scaling']:.2f}x "
        f"(floor {report['scaling_floor']:.1f}x), p99 inflation "
        f"{report['p99_inflation']:.2f}x "
        f"(ceiling {report['p99_inflation_ceiling']:.1f}x); "
        f"failover: {failover_note}; gates: "
        + ", ".join(f"{name} {'PASS' if ok else 'FAIL'}"
                    for name, ok in gates.items() if name != "passed")
        + "; placement is keyed on static table metadata only — the "
          "leakage audit replays the planner under contrasting skews")
    return result
