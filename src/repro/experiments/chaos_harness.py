"""Chaos harness: serving availability under injected faults.

Not a paper figure — a robustness extension. Replays the Fig 13 serving
configuration through the resilient execution path under the chaos
scenarios of :mod:`repro.resilience.chaos` and tabulates availability, p99
inflation, and degradation-audit verdicts per scenario.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult


def run(seed: int = 0, num_requests: int = 512,
        rate_rps: float = 2000.0) -> ExperimentResult:
    from repro.resilience.chaos import run_chaos

    report = run_chaos(seed=seed, num_requests=num_requests,
                       rate_rps=rate_rps)
    result = ExperimentResult(
        experiment_id="chaos",
        title=f"{report['spec']}: serving under faults (seed={seed}, "
              f"{num_requests} requests @ {rate_rps:.0f} rps)",
        headers=("scenario", "availability", "p99_ms", "p99_inflation",
                 "sla_violations", "retries", "shed", "degradations",
                 "audits"),
    )
    for scenario in report["scenarios"]:
        audits = ("ok" if all(event["audit_passed"]
                              for event in scenario["degradations"])
                  else "LEAKY")
        result.add_row(scenario["name"],
                       f"{scenario['availability']:.4f}",
                       f"{scenario['p99_seconds'] * 1e3:.3f}",
                       f"{scenario['p99_inflation']:.2f}x",
                       scenario["sla_violations"],
                       scenario["retries_total"],
                       scenario["shed_requests"],
                       len(scenario["degradations"]),
                       audits)
    gates = report["gates"]
    result.notes = (f"gates: availability "
                    f"{'PASS' if gates['availability'] else 'FAIL'} "
                    f"(floor {report['availability_floor']}), "
                    f"degradation audits "
                    f"{'PASS' if gates['degradation_audits'] else 'FAIL'}; "
                    f"degraded techniques stay inside the oblivious set "
                    f"(never raw lookup)")
    return result
