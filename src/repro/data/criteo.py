"""Synthetic Criteo-schema CTR datasets (Kaggle and Terabyte stand-ins).

The real Criteo datasets (2 TB of click logs) are not available offline, so
we synthesise datasets with the same *schema*: 13 dense features, 26 sparse
features whose per-table cardinalities are the well-known preprocessed
counts used by the public DLRM benchmark (Terabyte capped at 1e7 indices,
as the paper notes its Criteo tables "only go up to 1e7").

Labels are produced by a planted ground-truth model: a random linear scorer
over the dense features plus per-category logit offsets. That gives the
learning problem real signal, so the accuracy-parity experiment (Table V —
table-based vs DHE-based DLRM reaching the same accuracy) is run for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive

#: Criteo Kaggle (Display Advertising Challenge) sparse-feature cardinalities
#: after the standard DLRM preprocessing.
KAGGLE_TABLE_SIZES: Tuple[int, ...] = (
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145, 5683,
    8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4, 7046547, 18, 15,
    286181, 105, 142572,
)

#: Criteo Terabyte cardinalities with the standard 1e7 index cap
#: (``--max-ind-range=10000000`` in the public DLRM benchmark).
TERABYTE_TABLE_SIZES: Tuple[int, ...] = (
    9980333, 36084, 17217, 7378, 20134, 3, 7112, 1442, 61, 9758201, 1333352,
    313829, 10, 2208, 11156, 122, 4, 970, 14, 9994222, 7267859, 9946608,
    415421, 12420, 101, 36,
)

NUM_DENSE_FEATURES = 13


@dataclass
class DlrmDatasetSpec:
    """Schema of a DLRM dataset: dense width and sparse cardinalities."""

    name: str
    num_dense: int
    table_sizes: Tuple[int, ...]
    embedding_dim: int

    @property
    def num_sparse(self) -> int:
        return len(self.table_sizes)


#: Paper Table IV: Criteo Kaggle model uses dim 16, Terabyte dim 64.
KAGGLE_SPEC = DlrmDatasetSpec("criteo-kaggle", NUM_DENSE_FEATURES,
                              KAGGLE_TABLE_SIZES, embedding_dim=16)
TERABYTE_SPEC = DlrmDatasetSpec("criteo-terabyte", NUM_DENSE_FEATURES,
                                TERABYTE_TABLE_SIZES, embedding_dim=64)


def scaled_spec(spec: DlrmDatasetSpec, max_rows: int,
                name_suffix: str = "-small") -> DlrmDatasetSpec:
    """A shrunken copy of ``spec`` with every table capped at ``max_rows``.

    Training-based tests/benches use capped schemas so end-to-end training
    finishes in seconds; table-size *distributions* keep their shape
    (ratios are preserved up to the cap).
    """
    check_positive("max_rows", max_rows)
    sizes = tuple(min(size, max_rows) for size in spec.table_sizes)
    return DlrmDatasetSpec(spec.name + name_suffix, spec.num_dense, sizes,
                           spec.embedding_dim)


@dataclass
class CtrBatch:
    """One minibatch of click-through-rate data."""

    dense: np.ndarray          # (batch, num_dense) float
    sparse: np.ndarray         # (batch, num_sparse) int indices
    labels: np.ndarray         # (batch,) {0,1}

    def __len__(self) -> int:
        return self.dense.shape[0]


class SyntheticCtrDataset:
    """CTR data generator with a planted ground-truth scoring model.

    The click probability for an example is
    ``sigmoid(w . dense + sum_f offset_f[sparse_f] + b)`` where the per-table
    offsets give categorical features genuine predictive power — a model
    class that both embedding-table and DHE DLRMs can fit.
    """

    def __init__(self, spec: DlrmDatasetSpec, seed: SeedLike = 0,
                 signal_scale: float = 1.5) -> None:
        self.spec = spec
        self.rng = new_rng(seed)
        self._dense_weights = self.rng.normal(0.0, 1.0, size=spec.num_dense)
        self._bias = float(self.rng.normal(0.0, 0.25))
        # Per-table categorical logit offsets. Large tables only need
        # offsets for the ids that can actually be sampled (head of zipf).
        self._offsets: List[np.ndarray] = []
        self._sample_range: List[int] = []
        for size in spec.table_sizes:
            effective = min(size, 100_000)
            self._sample_range.append(effective)
            self._offsets.append(
                self.rng.normal(0.0, signal_scale / np.sqrt(spec.num_sparse),
                                size=effective))

    def _sample_indices(self, table: int, count: int) -> np.ndarray:
        """Bounded power-law popularity: log-uniform ranks (p(x) ~ 1/x),
        matching the heavy head skew of real CTR data while keeping every
        draw inside the table."""
        effective = self._sample_range[table]
        if effective == 1:
            return np.zeros(count, dtype=np.int64)
        uniforms = self.rng.random(count)
        ranks = np.floor(effective ** uniforms).astype(np.int64)  # in [1, n]
        return np.minimum(ranks - 1, effective - 1)

    def batch(self, batch_size: int) -> CtrBatch:
        """Draw one labelled minibatch."""
        check_positive("batch_size", batch_size)
        dense = self.rng.normal(0.0, 1.0,
                                size=(batch_size, self.spec.num_dense))
        sparse = np.empty((batch_size, self.spec.num_sparse), dtype=np.int64)
        logits = dense @ self._dense_weights + self._bias
        for table in range(self.spec.num_sparse):
            indices = self._sample_indices(table, batch_size)
            sparse[:, table] = indices
            logits += self._offsets[table][indices]
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        labels = (self.rng.random(batch_size) < probabilities).astype(np.float64)
        return CtrBatch(dense=dense, sparse=sparse, labels=labels)

    def batches(self, batch_size: int, count: int) -> List[CtrBatch]:
        return [self.batch(batch_size) for _ in range(count)]

    def bayes_optimal_auc(self, num_samples: int = 20_000) -> float:
        """ROC-AUC of the planted model itself — the learnable ceiling."""
        from repro.metrics.accuracy import roc_auc
        sample = self.batch(num_samples)
        # Recompute the true logits for the sample.
        logits = sample.dense @ self._dense_weights + self._bias
        for table in range(self.spec.num_sparse):
            logits += self._offsets[table][sample.sparse[:, table]]
        return roc_auc(sample.labels, logits)
