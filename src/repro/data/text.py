"""Synthetic language-modelling corpus + tokenizer (OpenWebText stand-in).

The LLM experiments (Fig 14, Fig 15) need a corpus with enough structure
that a small GPT can measurably reduce perplexity by finetuning. We build a
Markov-English generator: a vocabulary of synthetic word tokens whose
bigram transitions are drawn from a sparse random chain, giving text with
strong local statistics (far from uniform, like natural language) while
remaining deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


class WordTokenizer:
    """A trivially invertible tokenizer over a synthetic word vocabulary.

    Mirrors the paper's trust model (§III): tokenization runs on the
    trusted client, mapping words to the token ids that the enclave's
    embedding layer consumes.
    """

    def __init__(self, vocab_size: int) -> None:
        check_positive("vocab_size", vocab_size)
        self.vocab_size = vocab_size
        self._words = [f"w{idx:04d}" for idx in range(vocab_size)]
        self._ids = {word: idx for idx, word in enumerate(self._words)}

    def encode(self, text: str) -> List[int]:
        tokens = []
        for word in text.split():
            if word not in self._ids:
                raise KeyError(f"unknown word {word!r}")
            tokens.append(self._ids[word])
        return tokens

    def decode(self, token_ids: Sequence[int]) -> str:
        return " ".join(self._words[int(t)] for t in token_ids)


@dataclass
class TextCorpus:
    """Train/validation token streams plus the generating tokenizer."""

    train_tokens: np.ndarray
    val_tokens: np.ndarray
    tokenizer: WordTokenizer

    @property
    def vocab_size(self) -> int:
        return self.tokenizer.vocab_size


class MarkovCorpusGenerator:
    """Generates token streams from a planted sparse bigram chain."""

    def __init__(self, vocab_size: int, branching: int = 8,
                 seed: SeedLike = 0) -> None:
        check_positive("vocab_size", vocab_size)
        check_positive("branching", branching)
        if branching > vocab_size:
            raise ValueError("branching cannot exceed vocab_size")
        self.vocab_size = vocab_size
        self.branching = branching
        self.rng = new_rng(seed)
        # Each token transitions to `branching` successors with Dirichlet
        # weights — strongly predictable local structure.
        self._successors = np.stack([
            self.rng.choice(vocab_size, size=branching, replace=False)
            for _ in range(vocab_size)
        ])
        self._weights = self.rng.dirichlet(np.full(branching, 0.5),
                                           size=vocab_size)

    def sample_tokens(self, length: int) -> np.ndarray:
        check_positive("length", length)
        tokens = np.empty(length, dtype=np.int64)
        current = int(self.rng.integers(self.vocab_size))
        for position in range(length):
            tokens[position] = current
            choice = self.rng.choice(self.branching, p=self._weights[current])
            current = int(self._successors[current, choice])
        return tokens

    def entropy_rate_bits(self) -> float:
        """Mean per-token entropy of the chain (perplexity floor = 2^H)."""
        probs = self._weights
        entropy = -(probs * np.log2(probs + 1e-12)).sum(axis=1)
        return float(entropy.mean())

    def build_corpus(self, train_length: int, val_length: int) -> TextCorpus:
        return TextCorpus(train_tokens=self.sample_tokens(train_length),
                          val_tokens=self.sample_tokens(val_length),
                          tokenizer=WordTokenizer(self.vocab_size))


def batchify(tokens: np.ndarray, batch_size: int, seq_len: int,
             rng: SeedLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a (inputs, targets) LM batch of shape (batch, seq_len)."""
    check_positive("batch_size", batch_size)
    check_positive("seq_len", seq_len)
    if tokens.size <= seq_len + 1:
        raise ValueError("token stream shorter than sequence length")
    generator = new_rng(rng)
    starts = generator.integers(0, tokens.size - seq_len - 1, size=batch_size)
    inputs = np.stack([tokens[s: s + seq_len] for s in starts])
    targets = np.stack([tokens[s + 1: s + seq_len + 1] for s in starts])
    return inputs, targets
