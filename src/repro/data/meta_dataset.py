"""Synthetic stand-in for Meta's 2022 ``dlrm_datasets`` table-size traces.

The paper uses the Meta dataset only for its *table sizes*: 788 sparse
features whose cardinalities reach 4e7 (§VI-C). The original traces are not
available offline, so we draw sizes from a log-normal fitted to the
description (a long tail of small tables, a head of multi-million-row
tables, maximum 4e7), deterministic under a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

META_NUM_TABLES = 788
META_MAX_ROWS = 40_000_000
META_EMBEDDING_DIM = 64  # paper: "embedding dimension of 64 as in Terabyte"


def meta_table_sizes(seed: SeedLike = 2022,
                     num_tables: int = META_NUM_TABLES,
                     max_rows: int = META_MAX_ROWS) -> Tuple[int, ...]:
    """Synthetic per-table cardinalities for the Meta-like DLRM.

    A two-component log-normal mixture clipped to ``[2, max_rows]``, with
    the largest table pinned at ``max_rows`` so the published maximum is
    represented exactly:

    * ~30% "small" categorical features (median ~1e3 rows) — these are what
      the hybrid scheme linear-scans in Table VIII;
    * ~70% "large" id-style features (median ~4e6) sized so the aggregate
      raw footprint at dim 64 lands near the ~910 GB the paper reports.
    """
    rng = new_rng(seed)
    small_count = int(round(0.3 * num_tables))
    small = np.exp(rng.normal(np.log(1e3), 1.6, size=small_count))
    large = np.exp(rng.normal(np.log(4e6), 1.0,
                              size=num_tables - small_count))
    sizes = np.concatenate([small, large])
    sizes = np.clip(sizes, 2, max_rows).astype(np.int64)
    sizes[int(np.argmax(sizes))] = max_rows
    return tuple(int(s) for s in np.sort(sizes)[::-1])


def total_table_bytes(sizes, dim: int = META_EMBEDDING_DIM,
                      element_bytes: int = 4) -> int:
    """Raw table footprint of the whole model (paper quotes ~910 GB)."""
    return int(sum(sizes)) * dim * element_bytes
