"""Synthetic datasets matching the paper's workloads."""

from repro.data.criteo import (
    KAGGLE_SPEC,
    KAGGLE_TABLE_SIZES,
    NUM_DENSE_FEATURES,
    TERABYTE_SPEC,
    TERABYTE_TABLE_SIZES,
    CtrBatch,
    DlrmDatasetSpec,
    SyntheticCtrDataset,
    scaled_spec,
)
from repro.data.meta_dataset import (
    META_EMBEDDING_DIM,
    META_MAX_ROWS,
    META_NUM_TABLES,
    meta_table_sizes,
    total_table_bytes,
)
from repro.data.text import (
    MarkovCorpusGenerator,
    TextCorpus,
    WordTokenizer,
    batchify,
)

__all__ = [
    "KAGGLE_SPEC",
    "KAGGLE_TABLE_SIZES",
    "NUM_DENSE_FEATURES",
    "TERABYTE_SPEC",
    "TERABYTE_TABLE_SIZES",
    "CtrBatch",
    "DlrmDatasetSpec",
    "SyntheticCtrDataset",
    "scaled_spec",
    "META_EMBEDDING_DIM",
    "META_MAX_ROWS",
    "META_NUM_TABLES",
    "meta_table_sizes",
    "total_table_bytes",
    "MarkovCorpusGenerator",
    "TextCorpus",
    "WordTokenizer",
    "batchify",
]
