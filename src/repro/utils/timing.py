"""Wall-clock timing utilities for the profiling harness.

Both entry points feed the telemetry layer: a named :class:`Timer` reports
its elapsed seconds to a histogram of that name, and
:func:`time_callable` records every repeat (not just the median it
returns) into a histogram, so benchmarks accumulate full latency
distributions (p50/p95/p99) while their return values stay scalar.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional


def _registry():
    # Imported lazily: repro.telemetry pulls in numpy-heavy modules and
    # this module is imported by repro.utils.__init__ (cycle otherwise).
    from repro.telemetry.runtime import get_registry

    return get_registry()


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True

    Pass ``metric="profiler.scan_seconds"`` to also record the elapsed
    time into that telemetry histogram on exit.
    """

    def __init__(self, metric: Optional[str] = None) -> None:
        self.elapsed = 0.0
        self.metric = metric
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.metric is not None:
            _registry().histogram(self.metric).observe(self.elapsed)


def time_callable(fn: Callable[[], object], repeats: int = 3, warmup: int = 1,
                  metric: Optional[str] = "timing.time_callable_seconds"
                  ) -> float:
    """Return the median wall-clock seconds of ``fn`` over ``repeats`` runs.

    Every sample (warmups excluded) is also observed into the ``metric``
    telemetry histogram, so the full distribution survives even though the
    return value is the backward-compatible median scalar. Pass
    ``metric=None`` to skip recording.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    histogram = (_registry().histogram(metric)
                 if metric is not None else None)
    samples: List[float] = []
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        samples.append(timer.elapsed)
        if histogram is not None:
            histogram.observe(timer.elapsed)
    samples.sort()
    return samples[len(samples) // 2]
