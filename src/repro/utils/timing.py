"""Wall-clock timing utilities for the profiling harness."""

from __future__ import annotations

import time
from typing import Callable, List


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(fn: Callable[[], object], repeats: int = 3, warmup: int = 1) -> float:
    """Return the median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        with Timer() as timer:
            fn()
        samples.append(timer.elapsed)
    samples.sort()
    return samples[len(samples) // 2]
