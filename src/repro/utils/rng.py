"""Seeded random-number-generator helpers.

Everything stochastic in the library (dataset synthesis, model init, ORAM
leaf assignment, attack noise) accepts an explicit seed or
``numpy.random.Generator`` so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged, so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: Optional[np.random.Generator] = None
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator to a new seed (used by tests)."""
        self._seed = seed
        self._rng = new_rng(seed)
