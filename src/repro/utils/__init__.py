"""Shared utilities: seeded RNG management, validation helpers, timing."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import Timer, time_callable
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in,
    check_power_of_two,
)

__all__ = [
    "RngMixin",
    "new_rng",
    "spawn_rngs",
    "Timer",
    "time_callable",
    "check_positive",
    "check_non_negative",
    "check_in",
    "check_power_of_two",
]
