"""Lightweight argument-validation helpers used across the library."""

from __future__ import annotations

import math
from typing import Any, Iterable


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` > 0."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_finite(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is finite (no NaN/inf)."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_positive_finite(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is finite and > 0."""
    check_finite(name, value)
    check_positive(name, value)


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is a probability in [0, 1]."""
    if not (math.isfinite(value) and 0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], "
                         f"got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
