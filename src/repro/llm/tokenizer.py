"""The oblivious tokenizer: square-root ORAM over the vocabulary table.

Tokenization leaks *before the model runs*: a dictionary tokenizer does
one table probe per token, so the probe count and addresses encode where
the token boundaries fall — enough to fingerprint the prompt even if every
later stage is oblivious (the OTRO observation). The fix mirrors the rest
of the library: make the trace a function of public metadata only.

:class:`ObliviousTokenizer` does exactly one
:class:`~repro.oram.SqrtORAM` access per prompt *symbol* — the access
count is the prompt length (public), the decision trace in
``llm.tokenize`` records only the symbol's ordinal, and the vocabulary
probe itself hides inside the square-root ORAM. Two prompts of the same
length are therefore exactly trace-equivalent at the decision plane, and
structurally equivalent at the memory plane (the one revealed store slot
per access is a fresh sample under the secret permutation).

:class:`BoundaryLeakingTokenizer` is the caught negative control: one
direct table probe per whitespace-delimited *word*, so both the probe
count and the probed addresses follow the token boundaries. The audit
must flag it — that is the detector-teeth gate in ``repro.llm.bench``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.oblivious.trace import READ, MemoryTracer
from repro.oram.sqrt_oram import SqrtORAM
from repro.telemetry.audit import (
    MODE_EXACT,
    MODE_STRUCTURAL,
    AuditSubject,
)
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive

#: decision-trace region: one ordinal record per prompt symbol
TOKENIZE_REGION = "llm.tokenize"


def vocabulary_payloads(vocab_size: int, embed_dim: int,
                        rng: SeedLike = None) -> np.ndarray:
    """Deterministic per-token embeddings (the vocabulary table)."""
    return new_rng(rng).standard_normal((vocab_size, embed_dim))


class ObliviousTokenizer:
    """One square-root ORAM access per symbol; trace = prompt length.

    ``tracer`` carries the ``llm.tokenize`` decision trace (ordinal
    records only — exactly equivalent across same-length prompts);
    ``memory_tracer`` is handed to the backing ORAM so the memory plane
    can be audited separately in structural mode. The two planes are
    deliberately separable: the standing audit conventions check each on
    its own tracer.
    """

    def __init__(self, vocab_size: int, embed_dim: int,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None,
                 memory_tracer: Optional[MemoryTracer] = None) -> None:
        check_positive("vocab_size", vocab_size)
        check_positive("embed_dim", embed_dim)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.tracer = tracer
        generator = new_rng(rng)
        self.vocabulary = vocabulary_payloads(vocab_size, embed_dim,
                                              generator)
        self.oram = SqrtORAM(vocab_size, embed_dim,
                             initial_payloads=self.vocabulary,
                             rng=generator, tracer=memory_tracer,
                             region_prefix="llm.vocab")

    # ------------------------------------------------------------------
    def token_ids(self, prompt: str) -> List[int]:
        """Symbol → vocabulary id (content-dependent, never traced)."""
        return [ord(symbol) % self.vocab_size for symbol in prompt]

    def tokenize(self, prompt: str) -> np.ndarray:
        """Embed every symbol; returns ``(len(prompt), embed_dim)``."""
        ids = self.token_ids(prompt)
        out = np.empty((len(ids), self.embed_dim), dtype=np.float64)
        for ordinal, token_id in enumerate(ids):
            if self.tracer is not None:
                self.tracer.record(READ, TOKENIZE_REGION, ordinal)
            out[ordinal] = self.oram.read(token_id)
        registry = get_registry()
        if registry.enabled:
            registry.counter("llm.tokenize.symbols_total").inc(len(ids))
            registry.counter("llm.tokenize.prompts_total").inc()
        return out


class BoundaryLeakingTokenizer:
    """The anti-pattern: one direct probe per word (negative control).

    Probe count == word count and probe addresses == word hashes, so the
    ``llm.tokenize`` trace encodes the prompt's boundary structure. Kept
    only so the bench can prove the auditor catches it; never serve with
    this.
    """

    def __init__(self, vocab_size: int, embed_dim: int,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None) -> None:
        check_positive("vocab_size", vocab_size)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.tracer = tracer
        self.vocabulary = vocabulary_payloads(vocab_size, embed_dim, rng)

    def tokenize(self, prompt: str) -> np.ndarray:
        words = prompt.split()
        out = np.empty((len(words), self.embed_dim), dtype=np.float64)
        for position, word in enumerate(words):
            token_id = sum(ord(symbol) for symbol in word) % self.vocab_size
            if self.tracer is not None:
                self.tracer.record(READ, TOKENIZE_REGION, token_id)
            out[position] = self.vocabulary[token_id]
        return out


# ----------------------------------------------------------------------
# Audit subjects (the standing conventions: decision exact, memory
# structural, negative control expected to leak).
# ----------------------------------------------------------------------
def contrasting_prompts(length: int = 24) -> List[str]:
    """Same-length prompts with maximally different boundary structure."""
    check_positive("length", length)
    one_word = "a" * length
    many_words = ("ab " * length)[:length]
    text = ("the quick onyx goblin " * length)[:length]
    return [one_word, many_words, text]


def tokenizer_subjects(vocab_size: int = 64, embed_dim: int = 8,
                       prompt_length: int = 24,
                       seed: int = 0) -> List[AuditSubject]:
    """The tokenizer's three standing subjects.

    * ``llm-tokenize`` — decision trace, exact mode: same-length prompts
      must produce byte-identical ordinal traces;
    * ``llm-tokenize-memory`` — the backing square-root ORAM's memory
      trace, structural mode (one fresh revealed slot per access);
    * ``llm-tokenize-boundary-leak`` — the per-word tokenizer, exact mode
      with the leak *expected*: the auditor's teeth.
    """
    prompts: Sequence[str] = contrasting_prompts(prompt_length)

    def decision_run(tracer: MemoryTracer, secret: str) -> None:
        ObliviousTokenizer(vocab_size, embed_dim, rng=seed,
                           tracer=tracer).tokenize(secret)

    def memory_run(tracer: MemoryTracer, secret: str) -> None:
        tokenizer = ObliviousTokenizer(vocab_size, embed_dim, rng=seed,
                                       memory_tracer=tracer)
        tracer.clear()  # drop initialisation traffic
        tokenizer.tokenize(secret)

    def leaky_run(tracer: MemoryTracer, secret: str) -> None:
        BoundaryLeakingTokenizer(vocab_size, embed_dim, rng=seed,
                                 tracer=tracer).tokenize(secret)

    return [
        AuditSubject("llm-tokenize", decision_run, prompts,
                     mode=MODE_EXACT),
        AuditSubject("llm-tokenize-memory", memory_run, prompts,
                     mode=MODE_STRUCTURAL),
        AuditSubject("llm-tokenize-boundary-leak", leaky_run, prompts,
                     mode=MODE_EXACT, expect_oblivious=False),
    ]
