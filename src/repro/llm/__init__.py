"""End-to-end oblivious LLM serving: tokenize → prefill → decode.

The package assembles the three-stage pipeline the paper's §VI-D serves
one stage at a time:

* :mod:`repro.llm.tokenizer` — an oblivious tokenizer backed by the
  square-root ORAM (:class:`~repro.oram.SqrtORAM`), closing the
  token-boundary side channel *upstream* of the model, with the
  boundary-leaking tokenizer kept as the audit's negative control;
* :mod:`repro.llm.stages` — the tokenize / prefill / decode stages as
  :class:`~repro.serving.PricedStage`\\ s over the cost model (prefill
  throughput-bound batched DHE, decode latency-bound Circuit ORAM with a
  per-token loop), plus their decision-trace audit subjects;
* :mod:`repro.llm.pools` — one independently autoscaled pool per stage:
  each owns its plan epochs, secret-free signal plane and hysteresis
  controller, all three sharing the audited migration path;
* :mod:`repro.llm.bench` — the gated simulator
  (``python -m repro.llm.bench``; registry id ``llm``).
"""

from repro.llm.pools import StagePool
from repro.llm.stages import (
    DECODE_REGION,
    PREFILL_REGION,
    LlmServingSpec,
    SIM_SHAPE,
    build_llm_pipeline,
    stage_subjects,
)
from repro.llm.tokenizer import (
    TOKENIZE_REGION,
    BoundaryLeakingTokenizer,
    ObliviousTokenizer,
    contrasting_prompts,
    tokenizer_subjects,
)

__all__ = [
    "BoundaryLeakingTokenizer",
    "DECODE_REGION",
    "LlmServingSpec",
    "ObliviousTokenizer",
    "PREFILL_REGION",
    "SIM_SHAPE",
    "StagePool",
    "TOKENIZE_REGION",
    "build_llm_pipeline",
    "contrasting_prompts",
    "stage_subjects",
    "tokenizer_subjects",
]
