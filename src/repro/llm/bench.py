"""The LLM serving bench: three pools, one pipeline, gated end to end.

Drives the tokenize → prefill → decode pipeline through a load ramp on
the simulated clock. Each stage's fleet is an independently autoscaled
:class:`~repro.llm.pools.StagePool`: the tokenizer pool starts
overprovisioned and scales *down* in the low-rate warm-up, the prefill
and decode pools saturate on the ramp and scale *up* — three control
loops, three secret-free signal planes, one shared audited migration
path. The gates:

* **throughput** — sustained decode tokens/sec on the final plateau
  stays >= ``TOKENS_PER_SECOND_FLOOR``;
* **per-token latency** — decode-stage p99 per generated token on the
  plateau stays <= ``DECODE_P99_PER_TOKEN_CEILING`` (TBT is the SLA the
  decode pool is latency-bound for);
* **per-stage + cross-stage leakage audits** — the tokenize / prefill /
  decode decision traces replay byte-identically across contrasting
  prompts in exact mode, one tracer threaded through all three stages
  stays exact, and the ORAM memory planes audit structurally;
* **detector teeth** — the boundary-leaking tokenizer and the
  hot-load-chasing controller are both *caught*;
* **elasticity** — every pool logs >= 1 scale event, every pool's
  decision timeline replays skew-invariantly through
  :func:`~repro.cluster.autoscale.controller.check_oblivious_scaling`,
  and every plan/migration the pools touched passed its audit;
* **live parity** — the live probe (real square-root ORAM tokenization,
  real per-token Circuit-ORAM decode loop hanging off the pipeline's
  decode batches) returns the same values as the plain tables.

Everything derives from one seed; two runs emit byte-identical JSON
(``allow_nan=False``) and CI pins that with ``cmp``.

CLI::

    python -m repro.llm.bench --seed 7 --json llm.json --no-timing
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.autoscale.controller import (
    AutoscaleConfig,
    HotLoadChasingController,
    audit_scaling,
    default_scaling_workloads,
)
from repro.cluster.placement import RingPlanner
from repro.cluster.sim import build_model
from repro.data import KAGGLE_SPEC, DlrmDatasetSpec
from repro.llm.pools import StagePool
from repro.llm.stages import (
    LlmServingSpec,
    build_llm_pipeline,
    per_node_capacity_rps,
    stage_subjects,
)
from repro.llm.tokenizer import ObliviousTokenizer, tokenizer_subjects
from repro.oram.circuit_oram import CircuitORAM
from repro.serving import ServingConfig
from repro.serving.requests import RequestQueue
from repro.telemetry.audit import LeakageAuditor
from repro.utils.rng import new_rng

#: the gates CI enforces (ISSUE 10 acceptance criteria)
TOKENS_PER_SECOND_FLOOR = 20000.0
DECODE_P99_PER_TOKEN_CEILING = 0.002   # seconds per generated token

INTERVAL_SECONDS = 0.25
#: warm-up trough (tokenize pool sheds a node), ramp to peak (prefill and
#: decode pools grow), then the plateau the throughput gates read.
RATES = (600.0, 600.0, 600.0, 1200.0, 2400.0, 3600.0, 3600.0, 3600.0,
         3600.0, 2400.0, 1800.0, 1800.0, 1800.0)
PLATEAU_TICKS = 3

REPLICATION = 1
STEP_SIZE = 4
HIGH_UTILISATION = 0.85
LOW_UTILISATION = 0.28
BREACH_TICKS = 2
COOLDOWN_TICKS = 1

#: (start_nodes, min_nodes, max_nodes) per pool — tokenize deliberately
#: overprovisioned so its required scale event is the scale-*down*.
POOL_SIZING = {
    "tokenize": (2, 1, 3),
    "prefill": (1, 1, 3),
    "decode": (1, 1, 4),
}

PROBE_REQUESTS = 8
AUDIT_PROMPT_LENGTH = 24


def rate_schedule() -> List[float]:
    """The offered-load timeline: warm-up trough, ramp, peak, plateau."""
    return list(RATES)


def build_pools(spec: LlmServingSpec,
                dataset: DlrmDatasetSpec = KAGGLE_SPEC
                ) -> Dict[str, StagePool]:
    """One audited pool per stage over the shared cluster machinery.

    Every pool plans the same dataset's table set through the standing
    threshold model (the pool's state shards — vocabulary, weights, KV
    partitions — priced like any other placed tables), so all three share
    the ring planner's incrementality and the one migration audit path.
    """
    uniform, thresholds = build_model(dataset, spec.prefill_batch)
    config = ServingConfig(batch_size=spec.prefill_batch, threads=1,
                           sla_seconds=0.020)
    skews = default_scaling_workloads(len(dataset.table_sizes))
    pools: Dict[str, StagePool] = {}
    for name, (start, low, high) in POOL_SIZING.items():
        planner = RingPlanner(start, thresholds,
                              dataset.embedding_dim, uniform)
        pools[name] = StagePool(
            name=name, planner=planner,
            table_sizes=dataset.table_sizes, config=config,
            per_node_capacity_rps=per_node_capacity_rps(spec, name),
            autoscale_config=AutoscaleConfig(
                min_nodes=low, max_nodes=high,
                high_utilisation=HIGH_UTILISATION,
                low_utilisation=LOW_UTILISATION,
                breach_ticks=BREACH_TICKS,
                cooldown_ticks=COOLDOWN_TICKS),
            start_nodes=start, replication=REPLICATION, skews=skews,
            interval_seconds=INTERVAL_SECONDS, step_size=STEP_SIZE)
    return pools


# ----------------------------------------------------------------------
# The live probe: real ORAMs behind the same pipeline seams.
# ----------------------------------------------------------------------
def probe_prompts(spec: LlmServingSpec, seed: int,
                  count: int = PROBE_REQUESTS) -> List[str]:
    """Deterministic prompts (letters + word boundaries) for the probe."""
    rng = new_rng(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz "
    draws = rng.integers(0, len(alphabet),
                         size=(count, spec.prompt_tokens))
    return ["".join(alphabet[symbol] for symbol in row) for row in draws]


def live_probe(spec: LlmServingSpec, seed: int) -> Dict[str, object]:
    """Run real ORAMs through the pipeline seams; check value parity.

    * tokenization: every probe prompt through the square-root ORAM must
      return exactly the vocabulary rows its token ids name;
    * decode: the per-token Circuit-ORAM loop hangs off the pipeline's
      ``on_decode_batch`` seam, and a batched-vs-sequential replay of the
      same id schedule must be value-identical (the lookahead contract).
    """
    tokenizer = ObliviousTokenizer(spec.shape.vocab_size,
                                   spec.shape.embed_dim, rng=seed)
    prompts = probe_prompts(spec, seed)
    tokenize_parity = all(
        np.allclose(tokenizer.tokenize(prompt),
                    tokenizer.vocabulary[tokenizer.token_ids(prompt)])
        for prompt in prompts)

    payloads = tokenizer.vocabulary
    decode_oram = CircuitORAM(spec.shape.vocab_size, spec.shape.embed_dim,
                              initial_payloads=payloads, rng=seed)
    schedule: List[np.ndarray] = []

    def decode_loop(batch) -> None:
        # One next-token fetch per lane per generated token: the
        # latency-bound per-token loop the decode pool prices.
        for step in range(spec.new_tokens):
            lane_ids = np.array(
                [(batch.first + lane + step) % spec.shape.vocab_size
                 for lane in range(batch.size)], dtype=np.int64)
            schedule.append(lane_ids)
            decode_oram.access_batch(lane_ids)

    pipeline = build_llm_pipeline(spec, on_decode_batch=decode_loop)
    queue = RequestQueue.poisson(PROBE_REQUESTS,
                                 PROBE_REQUESTS / INTERVAL_SECONDS,
                                 rng=seed)
    report = pipeline.serve(queue)

    # Replay the exact id schedule sequentially on a fresh ORAM: batched
    # and sequential access must agree payload-for-payload.
    replay = CircuitORAM(spec.shape.vocab_size, spec.shape.embed_dim,
                         initial_payloads=payloads, rng=seed + 1)
    decode_parity = all(
        np.allclose(np.stack([replay.access(int(block))
                              for block in lane_ids]),
                    payloads[lane_ids])
        for lane_ids in schedule)

    return {
        "num_requests": PROBE_REQUESTS,
        "prompt_tokens": spec.prompt_tokens,
        "tokenize_parity": tokenize_parity,
        "decode_parity": decode_parity,
        "tokenizer_accesses": tokenizer.oram.stats.accesses,
        "tokenizer_reshuffles": tokenizer.oram.stats.eviction_passes,
        "decode_accesses": decode_oram.stats.accesses,
        "decode_eviction_passes": decode_oram.stats.eviction_passes,
        "pipeline": report.to_dict(),
    }


# ----------------------------------------------------------------------
# The bench.
# ----------------------------------------------------------------------
def run_bench(seed: int = 0,
              spec: Optional[LlmServingSpec] = None) -> Dict[str, object]:
    """Run the ramp; return the JSON-stable gated report."""
    if spec is None:
        spec = LlmServingSpec()
    rates = rate_schedule()
    ticks = len(rates)
    pools = build_pools(spec)
    skews = default_scaling_workloads(len(KAGGLE_SPEC.table_sizes))

    cells: List[Dict[str, object]] = []
    plateau_per_token: List[np.ndarray] = []
    plateau_tokens_ps: List[float] = []

    for tick in range(ticks):
        now = tick * INTERVAL_SECONDS
        rate = rates[tick]
        num_requests = int(round(rate * INTERVAL_SECONDS))
        queue = RequestQueue.poisson(num_requests, rate,
                                     rng=seed * 1000 + tick)
        pipeline = build_llm_pipeline(
            spec, node_counts={name: pool.nodes
                               for name, pool in pools.items()})
        report = pipeline.serve(queue)
        cell: Dict[str, object] = {
            "tick": tick,
            "rate_rps": rate,
            "num_requests": num_requests,
            "nodes": {name: pool.nodes for name, pool in pools.items()},
            "pipeline": report.to_dict(),
            "pools": {},
        }
        for name, pool in pools.items():
            stage = report.stage(name)
            cell["pools"][name] = pool.tick(
                offered_rps=rate,
                queue_delay_seconds=stage.report.mean_queue_delay,
                now_seconds=now)
        if tick >= ticks - PLATEAU_TICKS:
            decode_stage = report.stage("decode")
            plateau_per_token.append(
                decode_stage.report.latencies / spec.new_tokens)
            achieved = cell["pools"]["decode"]["signals"]["achieved_rps"]
            plateau_tokens_ps.append(achieved * spec.new_tokens)
        cells.append(cell)

    # ------------------------------------------------------------------
    # Throughput + per-token latency gates (final plateau).
    tokens_per_second = min(plateau_tokens_ps)
    per_token = np.concatenate(plateau_per_token)
    decode_p99_per_token = float(np.percentile(per_token, 99.0))

    # ------------------------------------------------------------------
    # Leakage audits: per-stage + cross-stage decision planes (exact),
    # ORAM memory planes (structural), negative controls expected to
    # leak.
    auditor = LeakageAuditor()
    findings = {
        subject.name: auditor.audit(subject)
        for subject in (tokenizer_subjects(
                            spec.shape.vocab_size, spec.shape.embed_dim,
                            prompt_length=AUDIT_PROMPT_LENGTH, seed=seed)
                        + stage_subjects(
                            spec, prompt_length=AUDIT_PROMPT_LENGTH,
                            seed=seed))
    }
    hot_load = audit_scaling(
        lambda: HotLoadChasingController(
            pools["prefill"].autoscale_config),
        pools["prefill"].timeline, skews, name="hot-load-chasing",
        expect_oblivious=False)

    # ------------------------------------------------------------------
    # Elasticity gates: every pool scaled at least once, every pool's
    # decision timeline is skew-invariant, every plan/migration audited.
    scaling_findings = {name: pool.scaling_audit(skews)
                        for name, pool in pools.items()}
    pool_events_ok = all(sum(pool.events.values()) >= 1
                         for pool in pools.values())

    probe = live_probe(spec, seed)

    gates = {
        "tokens_per_second": tokens_per_second >= TOKENS_PER_SECOND_FLOOR,
        "decode_p99_per_token":
            decode_p99_per_token <= DECODE_P99_PER_TOKEN_CEILING,
        "tokenize_audit": findings["llm-tokenize"].passed,
        "prefill_audit": findings["llm-prefill"].passed,
        "decode_audit": findings["llm-decode"].passed,
        "cross_stage_audit": findings["llm-cross-stage"].passed,
        "memory_audits": (findings["llm-tokenize-memory"].passed
                          and findings["llm-decode-memory"].passed),
        "detector_teeth":
            (findings["llm-tokenize-boundary-leak"].leak_detected
             and hot_load.leak_detected),
        "pool_scale_events": pool_events_ok,
        "scaling_audit": all(finding.passed
                             for finding in scaling_findings.values()),
        "placement_audit": all(pool.placement_ok
                               for pool in pools.values()),
        "migration_audit": all(pool.migration_ok
                               for pool in pools.values()),
        "live_parity": (probe["tokenize_parity"]
                        and probe["decode_parity"]),
    }
    gates["passed"] = all(gates.values())

    return {
        "seed": seed,
        "spec": spec.to_dict(),
        "interval_seconds": INTERVAL_SECONDS,
        "ticks": ticks,
        "rates_rps": list(rates),
        "plateau_ticks": PLATEAU_TICKS,
        "tokens_per_second": tokens_per_second,
        "tokens_per_second_floor": TOKENS_PER_SECOND_FLOOR,
        "decode_p99_per_token_seconds": decode_p99_per_token,
        "decode_p99_per_token_ceiling": DECODE_P99_PER_TOKEN_CEILING,
        "pools": {name: pool.to_dict() for name, pool in pools.items()},
        "intervals": cells,
        "audits": {name: finding.to_dict()
                   for name, finding in sorted(findings.items())},
        "scaling_audits": {name: finding.to_dict()
                           for name, finding
                           in sorted(scaling_findings.items())},
        "hot_load_audit": hot_load.to_dict(),
        "live_probe": probe,
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable ramp summary (deterministic, mirrors the JSON)."""
    lines = [f"llm serving bench (seed={report['seed']}, "
             f"{report['ticks']} ticks x "
             f"{report['interval_seconds']:.2f}s, "
             f"prompt={report['spec']['prompt_tokens']} "
             f"new={report['spec']['new_tokens']})"]
    for cell in report["intervals"]:
        nodes = cell["nodes"]
        verdicts = []
        for name in ("tokenize", "prefill", "decode"):
            decision = cell["pools"][name]["decision"]
            if decision["action"] in ("scale-up", "scale-down"):
                verdicts.append(
                    f"{name} {decision['action']} "
                    f"{decision['current_nodes']}->"
                    f"{decision['target_nodes']}")
        decode = cell["pipeline"]["stages"]["decode"]
        lines.append(
            f"  t{cell['tick']:>2}: rate={cell['rate_rps']:>6.0f} "
            f"nodes=({nodes['tokenize']},{nodes['prefill']},"
            f"{nodes['decode']}) "
            f"decode p99={decode['p99_seconds'] * 1e3:6.2f} ms"
            + (f"  [{'; '.join(verdicts)}]" if verdicts else ""))
    lines.append(
        f"  tokens/sec={report['tokens_per_second']:.0f} "
        f"(floor {report['tokens_per_second_floor']:.0f})  "
        f"decode p99/token="
        f"{report['decode_p99_per_token_seconds'] * 1e3:.3f} ms "
        f"(ceiling "
        f"{report['decode_p99_per_token_ceiling'] * 1e3:.3f} ms)")
    for name, pool in report["pools"].items():
        events = pool["events"]
        lines.append(
            f"  pool {name:>8}: final nodes={pool['final_nodes']} "
            f"epoch={pool['final_epoch']} "
            f"up={events['scale_up_events']} "
            f"down={events['scale_down_events']}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def _wallclock_note(seed: int) -> str:
    """Informational wall-clock of one bench run (stdout only, never in
    the JSON)."""
    import time

    start = time.perf_counter()
    run_bench(seed=seed)
    elapsed = time.perf_counter() - start
    return f"wall-clock (informational): one bench run {elapsed:.2f}s"


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="End-to-end oblivious LLM serving: three autoscaled "
                    "pools, one audited pipeline, gated.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic bench report")
    parser.add_argument("--no-timing", action="store_true",
                        help="skip the informational wall-clock note")
    args = parser.parse_args(argv)

    report = run_bench(seed=args.seed)
    print(render(report))
    if not args.no_timing:
        print(_wallclock_note(args.seed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
