"""The three LLM pipeline stages, priced through the cost model.

Each stage is a :class:`~repro.serving.PricedStage` whose per-batch
service time comes from the analytic platform model, so the pipeline's
latency arithmetic is exactly the paper's §VI-D pricing:

* **tokenize** — one square-root ORAM access per prompt symbol
  (:func:`~repro.costmodel.sqrt_oram_latency`); cheap, so its pool runs
  overprovisioned and is the one that scales *down*;
* **prefill** — throughput-bound: batched DHE embedding generation plus
  the dense prompt matmuls
  (:func:`~repro.costmodel.llm.stage_latency` with ``stage="prefill"``),
  batched aggressively (a wait window fills the batch);
* **decode** — latency-bound: the per-token loop, one Circuit-ORAM
  embedding fetch per generated token per lane
  (:func:`~repro.costmodel.llm.decode_latency`), batched greedily at a
  small cap because TBT is the SLA.

Each stage also carries a *decision-trace* audit subject: the per-stage
schedules (which ordinal a symbol lands at, which lane a request rides,
which step of the token loop is running) are recorded as ordinals in the
``llm.prefill`` / ``llm.decode`` regions and must replay byte-identically
across contrasting prompts — content may steer values, never decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.costmodel.latency import sqrt_oram_latency
from repro.costmodel.llm import LlmShape, decode_latency, stage_latency
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.llm.tokenizer import ObliviousTokenizer, contrasting_prompts
from repro.oblivious.trace import READ, MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.serving.batcher import BatchingPolicy
from repro.serving.pipeline import PipelineEngine, PricedStage
from repro.telemetry.audit import (
    MODE_EXACT,
    MODE_STRUCTURAL,
    AuditSubject,
)
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive

#: decision-trace regions for the two model stages
PREFILL_REGION = "llm.prefill"
DECODE_REGION = "llm.decode"

#: the bench's scaled-down decoder (keeps the sim's capacities in the
#: hundreds-to-thousands of requests per second per node)
SIM_SHAPE = LlmShape(vocab_size=512, embed_dim=64, num_layers=4,
                     context_length=128)


@dataclass(frozen=True)
class LlmServingSpec:
    """Sizes and batching caps for the three-stage pipeline."""

    shape: LlmShape = SIM_SHAPE
    prompt_tokens: int = 32
    new_tokens: int = 16
    tokenize_batch: int = 32
    prefill_batch: int = 16
    decode_batch: int = 4
    prefill_wait_seconds: float = 0.002
    threads: int = 1

    def __post_init__(self) -> None:
        check_positive("prompt_tokens", self.prompt_tokens)
        check_positive("new_tokens", self.new_tokens)
        check_positive("tokenize_batch", self.tokenize_batch)
        check_positive("prefill_batch", self.prefill_batch)
        check_positive("decode_batch", self.decode_batch)

    def to_dict(self) -> dict:
        return {
            "vocab_size": self.shape.vocab_size,
            "embed_dim": self.shape.embed_dim,
            "num_layers": self.shape.num_layers,
            "prompt_tokens": self.prompt_tokens,
            "new_tokens": self.new_tokens,
            "tokenize_batch": self.tokenize_batch,
            "prefill_batch": self.prefill_batch,
            "decode_batch": self.decode_batch,
            "prefill_wait_seconds": self.prefill_wait_seconds,
            "threads": self.threads,
        }


# ----------------------------------------------------------------------
# Per-batch service-time functions (the cost-model pricing).
# ----------------------------------------------------------------------
def tokenize_service_time(spec: LlmServingSpec,
                          platform: PlatformModel = DEFAULT_PLATFORM
                          ) -> Callable[[int], float]:
    """``prompt_tokens`` square-root ORAM accesses per request."""
    def price(batch_size: int) -> float:
        return sqrt_oram_latency(spec.shape.vocab_size,
                                 spec.shape.embed_dim,
                                 batch_size * spec.prompt_tokens,
                                 spec.threads, platform)
    return price


def prefill_service_time(spec: LlmServingSpec,
                         platform: PlatformModel = DEFAULT_PLATFORM
                         ) -> Callable[[int], float]:
    """Batched DHE embeddings + dense prompt matmuls (throughput-bound)."""
    def price(batch_size: int) -> float:
        return stage_latency("dhe", "prefill", spec.shape, batch_size,
                             spec.prompt_tokens, spec.threads, platform)
    return price


def decode_service_time(spec: LlmServingSpec,
                        platform: PlatformModel = DEFAULT_PLATFORM
                        ) -> Callable[[int], float]:
    """The per-token loop: ``new_tokens`` Circuit-ORAM decode steps."""
    def price(batch_size: int) -> float:
        return decode_latency("circuit", spec.shape, batch_size,
                              spec.prompt_tokens, spec.new_tokens,
                              spec.threads, platform)
    return price


def per_node_capacity_rps(spec: LlmServingSpec, stage: str,
                          platform: PlatformModel = DEFAULT_PLATFORM
                          ) -> float:
    """Fluid capacity of one node: full batch over its service time."""
    pricing = {
        "tokenize": (spec.tokenize_batch, tokenize_service_time),
        "prefill": (spec.prefill_batch, prefill_service_time),
        "decode": (spec.decode_batch, decode_service_time),
    }
    batch, factory = pricing[stage]
    return batch / factory(spec, platform)(batch)


# ----------------------------------------------------------------------
# The pipeline itself.
# ----------------------------------------------------------------------
def build_llm_pipeline(spec: LlmServingSpec = LlmServingSpec(),
                       platform: PlatformModel = DEFAULT_PLATFORM,
                       on_decode_batch: Optional[Callable[..., None]] = None,
                       node_counts: Optional[Dict[str, int]] = None
                       ) -> PipelineEngine:
    """tokenize → prefill → decode as one :class:`PipelineEngine`.

    ``on_decode_batch`` (optional) receives every scheduled decode batch —
    the bench's live probe hangs the real per-token Circuit-ORAM loop off
    it. The priced sweep leaves it ``None``.

    ``node_counts`` (optional, per stage name) prices each stage as a
    *fleet*: the fluid approximation divides the per-batch service time
    by the pool's node count, which is exactly the capacity model the
    pools scale on. Default is one node per stage.
    """
    counts = {"tokenize": 1, "prefill": 1, "decode": 1}
    if node_counts:
        unknown = set(node_counts) - set(counts)
        if unknown:
            raise ValueError(f"unknown stage names {sorted(unknown)}")
        counts.update(node_counts)
    for stage_name, nodes in counts.items():
        check_positive(f"node_counts[{stage_name!r}]", nodes)

    def fleet(price: Callable[[int], float],
              stage_name: str) -> Callable[[int], float]:
        nodes = counts[stage_name]
        if nodes == 1:
            return price
        return lambda batch_size: price(batch_size) / nodes

    registry = get_registry()

    def count(stage_name: str) -> Callable[..., None]:
        def observe(batch) -> None:
            if registry.enabled:
                registry.counter(
                    f"llm.stage.{stage_name}.batches_total").inc()
                registry.counter(
                    f"llm.stage.{stage_name}.requests_total").inc(
                        batch.size)
        return observe

    decode_hooks = [count("decode")]
    if on_decode_batch is not None:
        decode_hooks.append(on_decode_batch)

    def decode_hook(batch) -> None:
        for hook in decode_hooks:
            hook(batch)

    stages = [
        PricedStage("tokenize",
                    BatchingPolicy(max_batch_size=spec.tokenize_batch,
                                   max_wait_seconds=0.0),
                    fleet(tokenize_service_time(spec, platform),
                          "tokenize"),
                    on_batch=count("tokenize")),
        PricedStage("prefill",
                    BatchingPolicy(max_batch_size=spec.prefill_batch,
                                   max_wait_seconds=spec
                                   .prefill_wait_seconds),
                    fleet(prefill_service_time(spec, platform), "prefill"),
                    on_batch=count("prefill")),
        PricedStage("decode",
                    BatchingPolicy(max_batch_size=spec.decode_batch,
                                   max_wait_seconds=0.0),
                    fleet(decode_service_time(spec, platform), "decode"),
                    on_batch=decode_hook),
    ]
    return PipelineEngine(stages)


# ----------------------------------------------------------------------
# Decision-trace audit subjects for the model stages.
# ----------------------------------------------------------------------
def stage_subjects(spec: LlmServingSpec = LlmServingSpec(),
                   prompt_length: int = 24,
                   seed: int = 0) -> List[AuditSubject]:
    """Prefill/decode decision traces (exact), decode memory (structural),
    and the cross-stage composition subject.

    The cross-stage subject threads **one** tracer through all three
    stages' decision planes for the same prompt — the pipeline-level
    claim that chaining oblivious stages stays oblivious (no stage leaks
    into another's region, and the concatenated trace is still a pure
    function of public metadata).
    """
    prompts: Sequence[str] = contrasting_prompts(prompt_length)
    shape = spec.shape

    def prefill_run(tracer: MemoryTracer, secret: str) -> None:
        # Dense prefill touches every prompt position identically; the
        # schedule records one ordinal per position, never the content.
        ids = [ord(symbol) % shape.vocab_size for symbol in secret]
        for ordinal in range(len(ids)):
            tracer.record(READ, PREFILL_REGION, ordinal)

    def decode_plan(tracer: Optional[MemoryTracer],
                    memory_tracer: Optional[MemoryTracer],
                    secret: str) -> None:
        # The per-token loop: each step fetches one embedding per lane
        # through Circuit ORAM. The decision trace records (step, lane)
        # ordinals only; the ORAM hides which vocabulary row each lane
        # wanted.
        ids = [ord(symbol) % shape.vocab_size for symbol in secret]
        oram = CircuitORAM(shape.vocab_size, shape.embed_dim, rng=seed,
                           tracer=memory_tracer)
        if memory_tracer is not None:
            memory_tracer.clear()  # drop initialisation traffic
        for step in range(spec.new_tokens):
            lane_ids = np.array([ids[step % len(ids)]], dtype=np.int64)
            if tracer is not None:
                for lane in range(lane_ids.size):
                    tracer.record(READ, DECODE_REGION,
                                  step * spec.decode_batch + lane)
            oram.access_batch(lane_ids)

    def decode_run(tracer: MemoryTracer, secret: str) -> None:
        decode_plan(tracer, None, secret)

    def decode_memory_run(tracer: MemoryTracer, secret: str) -> None:
        decode_plan(None, tracer, secret)

    def cross_stage_run(tracer: MemoryTracer, secret: str) -> None:
        ObliviousTokenizer(shape.vocab_size, shape.embed_dim, rng=seed,
                           tracer=tracer).tokenize(secret)
        prefill_run(tracer, secret)
        decode_run(tracer, secret)

    return [
        AuditSubject("llm-prefill", prefill_run, prompts,
                     mode=MODE_EXACT),
        AuditSubject("llm-decode", decode_run, prompts, mode=MODE_EXACT),
        AuditSubject("llm-decode-memory", decode_memory_run, prompts,
                     mode=MODE_STRUCTURAL),
        AuditSubject("llm-cross-stage", cross_stage_run, prompts,
                     mode=MODE_EXACT),
    ]
