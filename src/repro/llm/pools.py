"""Per-stage pools: three independently autoscaled fleets, one audit path.

The cluster layer was built around a single fleet: one planner, one epoch
control plane, one autoscaler. A pipeline wants one of *each per stage* —
tokenize, prefill and decode have different cost shapes, so yoking them to
one node count either starves the bottleneck or wastes the cheap stage.
:class:`StagePool` packages the standing machinery per pool:

* plans come from a :class:`~repro.cluster.placement.RingPlanner` (one
  per pool), and every node count's plan passes
  :func:`~repro.cluster.placement.check_oblivious_placement` before it
  may serve — memoised, exactly as the autoscale sim does;
* epochs are versioned by the pool's own
  :class:`~repro.cluster.epoch.EpochControlPlane`; a scale decision
  advances the epoch and the cutover is modelled through the **shared**
  migration path — a :class:`~repro.cluster.migration.MigrationEngine`
  between the two epochs whose move-set is audited by
  :func:`~repro.cluster.migration.audit_migration` (the same auditor the
  DLRM fleet's live migrations go through);
* scale decisions read the pool's own
  :class:`~repro.cluster.autoscale.signals.SignalPlane` — secret-free
  aggregates of *this stage's* offered load vs fluid capacity — and the
  pool's decision timeline replays skew-invariantly through
  :func:`~repro.cluster.autoscale.controller.check_oblivious_scaling`.

Node counts are public per the threat model, but *three* node counts are
three observables: the per-pool signal planes keep each one a function of
whole-stage aggregates, so the triple (tokenize, prefill, decode) sizes
still reveal only offered load, never content.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.autoscale.controller import (
    ACTION_DOWN,
    ACTION_UP,
    Autoscaler,
    AutoscaleConfig,
    check_oblivious_scaling,
)
from repro.cluster.autoscale.signals import ClusterSignals, SignalPlane
from repro.cluster.epoch import EpochControlPlane, PlanEpoch
from repro.cluster.migration import (
    BandwidthContentionModel,
    MigrationEngine,
    audit_migration,
)
from repro.cluster.placement import (
    RingPlanner,
    check_oblivious_placement,
)
from repro.cluster.sim import plan_digest
from repro.serving.engine import ServingConfig
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive


class StagePool:
    """One pipeline stage's fleet: plans, epochs, signals, controller."""

    def __init__(self, name: str, planner: RingPlanner,
                 table_sizes: Sequence[int], config: ServingConfig,
                 per_node_capacity_rps: float,
                 autoscale_config: AutoscaleConfig,
                 start_nodes: int, replication: int = 1,
                 skews: Optional[Sequence[Sequence[int]]] = None,
                 interval_seconds: float = 0.25, step_size: int = 4,
                 contention: Optional[BandwidthContentionModel] = None
                 ) -> None:
        check_positive("per_node_capacity_rps", per_node_capacity_rps)
        check_positive("start_nodes", start_nodes)
        self.name = name
        self.table_sizes = list(table_sizes)
        self.config = config
        self.per_node_capacity_rps = per_node_capacity_rps
        self.autoscale_config = autoscale_config
        self.replication = replication
        self.skews = list(skews) if skews is not None else None
        self.step_size = step_size
        self.contention = (BandwidthContentionModel()
                           if contention is None else contention)

        self._base_planner = (planner if planner.num_nodes == start_nodes
                              else planner.for_nodes(start_nodes))
        self._plans: Dict[int, object] = {}
        self.plan_audits: List[Dict[str, object]] = []
        self.placement_ok = True

        self.control = EpochControlPlane(
            PlanEpoch.create(0, self.plan_for(start_nodes),
                             replication=replication))
        self.autoscaler = Autoscaler(autoscale_config)
        self.plane = SignalPlane(None, interval_seconds=interval_seconds)
        self.timeline: List[ClusterSignals] = []
        self.migration_audits: List[Dict[str, object]] = []
        self.migration_ok = True
        self.events = {"scale_up_events": 0, "scale_down_events": 0}

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> int:
        return self.control.current.num_nodes

    def capacity_rps(self) -> float:
        """Fluid provisioned capacity of the pool's current fleet."""
        return self.nodes * self.per_node_capacity_rps

    def plan_for(self, nodes: int):
        """Memoised, placement-audited plan for ``nodes`` (sim idiom)."""
        if nodes not in self._plans:
            planner = (self._base_planner
                       if self._base_planner.num_nodes == nodes
                       else self._base_planner.for_nodes(nodes))
            finding = check_oblivious_placement(
                planner, self.table_sizes, self.config,
                workloads=self.skews)
            self.placement_ok = self.placement_ok and finding.passed
            self._plans[nodes] = planner.plan(self.table_sizes,
                                              self.config)
            self.plan_audits.append({
                "pool": self.name,
                "num_nodes": nodes,
                "plan_digest": plan_digest(self._plans[nodes]),
                "audit_divergence": finding.divergence,
                "audit_passed": finding.passed,
            })
        return self._plans[nodes]

    # ------------------------------------------------------------------
    def tick(self, offered_rps: float, queue_delay_seconds: float,
             shed_requests: int = 0,
             now_seconds: float = 0.0) -> Dict[str, object]:
        """One decision interval: snapshot signals, decide, maybe reshape.

        A scale decision advances the pool's epoch and sends the cutover
        through the shared migration path: the move-set between the two
        epochs is audited (every pool, every reshape) and the old epoch
        retires once the modelled copy is accounted. Returns the
        JSON-stable cell for the bench's interval log.
        """
        capacity = self.capacity_rps()
        signals = self.plane.snapshot(
            offered_rps=offered_rps,
            achieved_rps=min(offered_rps, capacity),
            capacity_rps=capacity,
            queue_delay_seconds=queue_delay_seconds,
            shed_requests=shed_requests,
            current_nodes=self.nodes,
            replication=self.replication,
            now_seconds=now_seconds)
        self.timeline.append(signals)
        decision = self.autoscaler.decide(signals)
        cell: Dict[str, object] = {
            "signals": signals.to_dict(),
            "decision": decision.to_dict(),
        }
        if decision.action in (ACTION_UP, ACTION_DOWN):
            source = self.control.current
            target = self.control.advance(
                self.plan_for(decision.target_nodes))
            candidate = MigrationEngine(source, target,
                                        step_size=self.step_size,
                                        contention=self.contention)
            moves = candidate.move_set()
            if moves:
                finding = audit_migration(
                    candidate,
                    name=f"{self.name}-{decision.action}"
                         f"-tick{signals.tick}")
                self.migration_ok = self.migration_ok and finding.passed
                self.migration_audits.append({
                    "pool": self.name,
                    "tick": signals.tick,
                    "kind": decision.action,
                    "tables": len(moves),
                    "bytes_modelled": sum(move.bytes_modelled
                                          for move in moves),
                    "audit_divergence": finding.divergence,
                    "audit_passed": finding.passed,
                })
                cell["migration"] = self.migration_audits[-1]
            self.control.retire_through(self.control.current.epoch - 1)
            key = ("scale_up_events" if decision.action == ACTION_UP
                   else "scale_down_events")
            self.events[key] += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    f"llm.pool.{self.name}.{key}_total").inc()
        registry = get_registry()
        if registry.enabled:
            registry.gauge(f"llm.pool.{self.name}.nodes").set(self.nodes)
            registry.gauge(f"llm.pool.{self.name}.utilisation").set(
                signals.utilisation)
        return cell

    # ------------------------------------------------------------------
    def scaling_audit(self, skews: Sequence[Sequence[int]]):
        """Replay this pool's decisions skew-invariantly (the gate)."""
        return check_oblivious_scaling(
            lambda: Autoscaler(self.autoscale_config), self.timeline,
            skews)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "per_node_capacity_rps": self.per_node_capacity_rps,
            "replication": self.replication,
            "autoscale_config": self.autoscale_config.to_dict(),
            "final_nodes": self.nodes,
            "final_epoch": self.control.current.epoch,
            "events": dict(self.events),
            "plan_audits": self.plan_audits,
            "migration_audits": self.migration_audits,
        }
