"""Deployment packaging for hybrid DLRMs (Algorithm 2's shipped artifact).

Algorithm 2 trains all-DHE models offline, materialises per-feature scan
tables, and ships a threshold database so inference can allocate per
configuration without retraining. This module persists and restores that
bundle:

* the DLRM state dict (``model.npz``),
* the dataset schema and DHE shapes (``manifest.json``),
* the profiled threshold database (in the manifest),

and rebuilds a ready-to-allocate model with
:func:`load_hybrid_deployment`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence


from repro.costmodel.latency import DheShape
from repro.data.criteo import DlrmDatasetSpec
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.hybrid import HybridEmbedding
from repro.hybrid.allocator import allocate_for_configuration, apply_allocations
from repro.hybrid.thresholds import ThresholdDatabase, ThresholdKey
from repro.models.dlrm import DLRM
from repro.nn.serialization import load_state, save_state

MANIFEST_NAME = "manifest.json"
MODEL_NAME = "model.npz"


@dataclass
class HybridDeployment:
    """A loaded deployment: the model plus its allocation machinery."""

    model: DLRM
    hybrids: List[HybridEmbedding]
    thresholds: ThresholdDatabase
    spec: DlrmDatasetSpec

    def configure(self, batch: int, threads: int) -> int:
        """Apply Algorithm 3 for the live configuration; returns #scan."""
        allocations = allocate_for_configuration(
            self.spec.table_sizes, self.thresholds, self.spec.embedding_dim,
            batch, threads)
        apply_allocations(self.hybrids, allocations)
        return sum(1 for a in allocations if a.technique == "scan")

    def engine(self, backend="modelled", varied: bool = True,
               platform=None):
        """An :class:`~repro.serving.engine.ExecutionEngine` for this bundle.

        The deployed artifact carries everything the engine needs — table
        sizes, the threshold database, and the per-feature DHE shapes (the
        widest stack is the Uniform reference the Varied sizing rule scales
        from) — so serving questions route through the same backend seam as
        profiling.
        """
        from repro.costmodel.platform import DEFAULT_PLATFORM
        from repro.serving.engine import ExecutionEngine

        uniform = max((hybrid.dhe.shape for hybrid in self.hybrids),
                      key=lambda shape: shape.k)
        return ExecutionEngine(
            self.spec.table_sizes, self.spec.embedding_dim, uniform,
            self.thresholds, varied=varied, backend=backend,
            platform=DEFAULT_PLATFORM if platform is None else platform)


def _shape_to_json(shape: DheShape) -> Dict:
    return {"k": shape.k, "fc_sizes": list(shape.fc_sizes),
            "out_dim": shape.out_dim}


def _shape_from_json(payload: Dict) -> DheShape:
    return DheShape(k=payload["k"], fc_sizes=tuple(payload["fc_sizes"]),
                    out_dim=payload["out_dim"])


def _thresholds_to_json(db: ThresholdDatabase) -> Dict:
    return {
        "dhe_technique": db.dhe_technique,
        "entries": [
            {"dim": key.dim, "batch": key.batch, "threads": key.threads,
             "threshold": value}
            for key, value in db.thresholds.items()
        ],
    }


def _thresholds_from_json(payload: Dict) -> ThresholdDatabase:
    db = ThresholdDatabase(dhe_technique=payload["dhe_technique"])
    for entry in payload["entries"]:
        key = ThresholdKey(entry["dim"], entry["batch"], entry["threads"])
        db.thresholds[key] = float(entry["threshold"])
    return db


def save_hybrid_deployment(directory: str, model: DLRM,
                           hybrids: Sequence[HybridEmbedding],
                           thresholds: ThresholdDatabase,
                           bottom_sizes: Sequence[int],
                           top_hidden_sizes: Sequence[int],
                           encoder_seeds: Sequence[int]) -> None:
    """Persist a trained hybrid model bundle to ``directory``.

    ``encoder_seeds`` are the per-feature DHE hash seeds — the universal
    hash constants must be reconstructed exactly or the decoder weights are
    meaningless.
    """
    if len(hybrids) != model.spec.num_sparse:
        raise ValueError("need one hybrid embedding per sparse feature")
    if len(encoder_seeds) != len(hybrids):
        raise ValueError("need one encoder seed per feature")
    os.makedirs(directory, exist_ok=True)
    save_state(model, os.path.join(directory, MODEL_NAME))
    manifest = {
        "spec": {
            "name": model.spec.name,
            "num_dense": model.spec.num_dense,
            "table_sizes": list(model.spec.table_sizes),
            "embedding_dim": model.spec.embedding_dim,
        },
        "bottom_sizes": list(bottom_sizes),
        "top_hidden_sizes": list(top_hidden_sizes),
        "dhe_shapes": [_shape_to_json(h.dhe.shape) for h in hybrids],
        "encoder_seeds": [int(seed) for seed in encoder_seeds],
        "thresholds": _thresholds_to_json(thresholds),
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_hybrid_deployment(directory: str) -> HybridDeployment:
    """Rebuild a :class:`HybridDeployment` saved by
    :func:`save_hybrid_deployment`."""
    with open(os.path.join(directory, MANIFEST_NAME)) as handle:
        manifest = json.load(handle)
    spec = DlrmDatasetSpec(
        name=manifest["spec"]["name"],
        num_dense=manifest["spec"]["num_dense"],
        table_sizes=tuple(manifest["spec"]["table_sizes"]),
        embedding_dim=manifest["spec"]["embedding_dim"],
    )
    shapes = [_shape_from_json(p) for p in manifest["dhe_shapes"]]
    seeds = manifest["encoder_seeds"]

    hybrids: List[HybridEmbedding] = []

    def factory(size: int, dim: int) -> HybridEmbedding:
        index = len(hybrids)
        dhe = DHEEmbedding(size, dim, shape=shapes[index], rng=seeds[index])
        hybrid = HybridEmbedding(dhe)
        hybrids.append(hybrid)
        return hybrid

    model = DLRM(spec, factory,
                 bottom_sizes=tuple(manifest["bottom_sizes"]),
                 top_hidden_sizes=tuple(manifest["top_hidden_sizes"]),
                 rng=0)
    load_state(model, os.path.join(directory, MODEL_NAME))
    thresholds = _thresholds_from_json(manifest["thresholds"])
    return HybridDeployment(model=model, hybrids=hybrids,
                            thresholds=thresholds, spec=spec)
