"""The hybrid scheme: profiling, thresholds, allocation, co-location planning."""

from repro.hybrid.allocator import (
    FeatureAllocation,
    allocate_by_threshold,
    allocate_for_configuration,
    allocation_latency,
    apply_allocations,
    count_scan_features,
)
from repro.hybrid.deployment import (
    HybridDeployment,
    load_hybrid_deployment,
    save_hybrid_deployment,
)
from repro.hybrid.colocation_planner import (
    ModelTenant,
    colocation_sweep,
    dlrm_tenant,
    latency_bounded_throughput,
    mixed_allocation_latency,
)
from repro.hybrid.profiler import (
    DEFAULT_SIZE_GRID,
    TECHNIQUES,
    OfflineProfiler,
    ProfileDatabase,
    ProfileKey,
)
from repro.hybrid.tuning import (
    SizeSearchResult,
    default_shape_ladder,
    dlrm_quality_fn,
    find_minimal_dhe_shape,
)
from repro.hybrid.thresholds import (
    ThresholdDatabase,
    ThresholdKey,
    build_threshold_database,
    hybrid_eligible_range,
    intersect_curves,
)

__all__ = [
    "HybridDeployment",
    "load_hybrid_deployment",
    "save_hybrid_deployment",
    "FeatureAllocation",
    "allocate_by_threshold",
    "allocate_for_configuration",
    "allocation_latency",
    "apply_allocations",
    "count_scan_features",
    "ModelTenant",
    "colocation_sweep",
    "dlrm_tenant",
    "latency_bounded_throughput",
    "mixed_allocation_latency",
    "DEFAULT_SIZE_GRID",
    "TECHNIQUES",
    "OfflineProfiler",
    "ProfileDatabase",
    "ProfileKey",
    "SizeSearchResult",
    "default_shape_ladder",
    "dlrm_quality_fn",
    "find_minimal_dhe_shape",
    "ThresholdDatabase",
    "ThresholdKey",
    "build_threshold_database",
    "hybrid_eligible_range",
    "intersect_curves",
]
