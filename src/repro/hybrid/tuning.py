"""DHE size search (§IV-C3): the smallest stack matching baseline quality.

Deployment step 1 of the paper's pipeline: "train DHE Uniform models to
search DHE parameters that can match or exceed the baseline table accuracy".
:func:`find_minimal_dhe_shape` walks a ladder of candidate shapes (cheapest
first) and returns the first whose trained quality reaches the baseline
within tolerance — together with the full search trace for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.costmodel.latency import DheShape
from repro.utils.validation import check_non_negative, check_positive

#: quality function: shape -> achieved metric (higher is better)
QualityFn = Callable[[DheShape], float]


@dataclass
class SizeSearchResult:
    """Outcome of a DHE size search."""

    chosen: Optional[DheShape]
    baseline_metric: float
    tolerance: float
    trace: List[Tuple[DheShape, float]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.chosen is not None


def default_shape_ladder(out_dim: int,
                         ks: Sequence[int] = (16, 32, 64, 128, 256, 512,
                                              1024)) -> List[DheShape]:
    """Candidate stacks of increasing capacity (k and one hidden FC of k)."""
    check_positive("out_dim", out_dim)
    return [DheShape(k=k, fc_sizes=(max(k, 2 * out_dim),), out_dim=out_dim)
            for k in ks]


def find_minimal_dhe_shape(quality_fn: QualityFn, baseline_metric: float,
                           candidates: Sequence[DheShape],
                           tolerance: float = 0.0) -> SizeSearchResult:
    """First (cheapest) candidate with quality >= baseline - tolerance.

    ``candidates`` must be ordered cheapest-first; the search stops at the
    first success, so its cost is proportional to how small a stack
    suffices (the common case for small/medium tables, which is exactly
    why DHE Varied works).
    """
    check_non_negative("tolerance", tolerance)
    if not candidates:
        raise ValueError("need at least one candidate shape")
    costs = [shape.flops_per_embedding() for shape in candidates]
    if costs != sorted(costs):
        raise ValueError("candidates must be ordered cheapest-first")
    result = SizeSearchResult(chosen=None, baseline_metric=baseline_metric,
                              tolerance=tolerance)
    for shape in candidates:
        metric = quality_fn(shape)
        result.trace.append((shape, metric))
        if metric >= baseline_metric - tolerance:
            result.chosen = shape
            return result
    return result


def dlrm_quality_fn(spec, dataset_seed: int, steps: int = 150,
                    batch_size: int = 64, eval_samples: int = 4096,
                    lr: float = 2e-3, model_seed: int = 0) -> QualityFn:
    """Quality function training a DLRM with the candidate DHE everywhere.

    Returns held-out AUC; every candidate sees identical data (fresh
    generator from the same seed) and identical dense-model init.
    """
    from repro.data.criteo import SyntheticCtrDataset
    from repro.embedding.dhe import DHEEmbedding
    from repro.models.dlrm import DLRM
    from repro.models.training import evaluate_dlrm, train_dlrm

    def quality(shape: DheShape) -> float:
        dataset = SyntheticCtrDataset(spec, seed=dataset_seed)
        model = DLRM(
            spec,
            lambda size, dim: DHEEmbedding(size, dim, shape=shape,
                                           rng=model_seed),
            bottom_sizes=(spec.num_dense, 64, spec.embedding_dim),
            top_hidden_sizes=(64,), rng=model_seed + 1)
        train_dlrm(model, dataset, steps=steps, batch_size=batch_size, lr=lr)
        fresh = SyntheticCtrDataset(spec, seed=dataset_seed)
        return evaluate_dlrm(model, fresh, num_samples=eval_samples)["auc"]

    return quality
