"""Offline profiling of embedding-generation latency (Algorithm 2, step 1).

The profiler sweeps table sizes for each technique under each execution
configuration (batch size x thread count), producing the latency database
from which the scan/DHE switching thresholds are extracted (Fig 6).

Latencies are resolved through the
:class:`~repro.serving.backends.ExecutionBackend` protocol — the same seam
the serving engine uses — so "modelled vs measured" is a backend choice,
not profiler-private logic:

* ``"modelled"`` (default) — the calibrated analytic platform model,
  standing in for the paper's on-SGX measurements;
* ``"measured"`` — wall-clock timing of this library's executable
  implementations, used by ablations to check that modelled and measured
  curves have the same shape;
* any :class:`~repro.serving.backends.ExecutionBackend` instance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.costmodel.latency import DheShape
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.serving.backends import BackendLike, resolve_backend
from repro.utils.validation import check_positive

TECHNIQUES = ("scan", "dhe-uniform", "dhe-varied", "path-oram", "circuit-oram")

#: default table-size grid: half-decade steps over the DLRM range
DEFAULT_SIZE_GRID: Tuple[int, ...] = tuple(
    int(round(10 ** (exponent / 2)))
    for exponent in range(4, 15)  # 100 .. 10^7
)


@dataclass(frozen=True)
class ProfileKey:
    """One profiled configuration."""

    technique: str
    table_size: int
    dim: int
    batch: int
    threads: int


@dataclass
class ProfileDatabase:
    """Latency lookups for profiled configurations."""

    platform: PlatformModel
    entries: Dict[ProfileKey, float] = field(default_factory=dict)

    def record(self, key: ProfileKey, latency: float) -> None:
        self.entries[key] = latency

    def latency(self, technique: str, table_size: int, dim: int,
                batch: int, threads: int) -> float:
        key = ProfileKey(technique, table_size, dim, batch, threads)
        if key not in self.entries:
            raise KeyError(f"configuration not profiled: {key}")
        return self.entries[key]

    def curve(self, technique: str, dim: int, batch: int, threads: int,
              sizes: Sequence[int]) -> List[float]:
        return [self.latency(technique, size, dim, batch, threads)
                for size in sizes]

    def profiled_sizes(self, technique: str, dim: int, batch: int,
                       threads: int) -> List[int]:
        sizes = sorted({key.table_size for key in self.entries
                        if key.technique == technique and key.dim == dim
                        and key.batch == batch and key.threads == threads})
        return sizes


class OfflineProfiler:
    """Builds a :class:`ProfileDatabase` over a configuration grid."""

    def __init__(self, uniform_shape: DheShape,
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 backend: BackendLike = "modelled") -> None:
        self.uniform_shape = uniform_shape
        self.platform = platform
        self._backend = resolve_backend(backend, uniform_shape, platform)

    @property
    def backend(self) -> str:
        """Short backend identifier (``"modelled"`` / ``"measured"``)."""
        return self._backend.name

    @property
    def execution_backend(self):
        """The :class:`~repro.serving.backends.ExecutionBackend` in use."""
        return self._backend

    # ------------------------------------------------------------------
    def profile(self, techniques: Iterable[str] = ("scan", "dhe-uniform"),
                sizes: Sequence[int] = DEFAULT_SIZE_GRID,
                dims: Sequence[int] = (16, 64),
                batches: Sequence[int] = (32,),
                threads_list: Sequence[int] = (1,)) -> ProfileDatabase:
        database = ProfileDatabase(platform=self.platform)
        for technique, size, dim, batch, threads in itertools.product(
                techniques, sizes, dims, batches, threads_list):
            check_positive("table size", size)
            latency = self._backend.technique_latency(technique, size, dim,
                                                      batch, threads)
            database.record(ProfileKey(technique, size, dim, batch, threads),
                            latency)
        return database
