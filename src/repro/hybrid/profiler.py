"""Offline profiling of embedding-generation latency (Algorithm 2, step 1).

The profiler sweeps table sizes for each technique under each execution
configuration (batch size x thread count), producing the latency database
from which the scan/DHE switching thresholds are extracted (Fig 6).

Two backends:

* ``modelled`` (default) — the calibrated analytic platform model, standing
  in for the paper's on-SGX measurements;
* ``measured`` — wall-clock timing of this library's executable
  implementations, used by ablations to check that modelled and measured
  curves have the same shape.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.latency import (
    DheShape,
    dhe_latency,
    dhe_varied_shape,
    linear_scan_latency,
    oram_latency,
)
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.utils.timing import time_callable
from repro.utils.validation import check_in, check_positive

TECHNIQUES = ("scan", "dhe-uniform", "dhe-varied", "path-oram", "circuit-oram")

#: default table-size grid: half-decade steps over the DLRM range
DEFAULT_SIZE_GRID: Tuple[int, ...] = tuple(
    int(round(10 ** (exponent / 2)))
    for exponent in range(4, 15)  # 100 .. 10^7
)


@dataclass(frozen=True)
class ProfileKey:
    """One profiled configuration."""

    technique: str
    table_size: int
    dim: int
    batch: int
    threads: int


@dataclass
class ProfileDatabase:
    """Latency lookups for profiled configurations."""

    platform: PlatformModel
    entries: Dict[ProfileKey, float] = field(default_factory=dict)

    def record(self, key: ProfileKey, latency: float) -> None:
        self.entries[key] = latency

    def latency(self, technique: str, table_size: int, dim: int,
                batch: int, threads: int) -> float:
        key = ProfileKey(technique, table_size, dim, batch, threads)
        if key not in self.entries:
            raise KeyError(f"configuration not profiled: {key}")
        return self.entries[key]

    def curve(self, technique: str, dim: int, batch: int, threads: int,
              sizes: Sequence[int]) -> List[float]:
        return [self.latency(technique, size, dim, batch, threads)
                for size in sizes]

    def profiled_sizes(self, technique: str, dim: int, batch: int,
                       threads: int) -> List[int]:
        sizes = sorted({key.table_size for key in self.entries
                        if key.technique == technique and key.dim == dim
                        and key.batch == batch and key.threads == threads})
        return sizes


class OfflineProfiler:
    """Builds a :class:`ProfileDatabase` over a configuration grid."""

    def __init__(self, uniform_shape: DheShape,
                 platform: PlatformModel = DEFAULT_PLATFORM,
                 backend: str = "modelled") -> None:
        check_in("backend", backend, ("modelled", "measured"))
        self.uniform_shape = uniform_shape
        self.platform = platform
        self.backend = backend

    # ------------------------------------------------------------------
    def _modelled_latency(self, technique: str, size: int, dim: int,
                          batch: int, threads: int) -> float:
        if technique == "scan":
            return linear_scan_latency(size, dim, batch, threads, self.platform)
        if technique == "dhe-uniform":
            return dhe_latency(self.uniform_shape, batch, threads, self.platform)
        if technique == "dhe-varied":
            shape = dhe_varied_shape(size, self.uniform_shape)
            return dhe_latency(shape, batch, threads, self.platform)
        if technique == "path-oram":
            return oram_latency("path", size, dim, batch, threads, self.platform)
        if technique == "circuit-oram":
            return oram_latency("circuit", size, dim, batch, threads, self.platform)
        raise ValueError(f"unknown technique {technique!r}")

    def _measured_latency(self, technique: str, size: int, dim: int,
                          batch: int, threads: int) -> float:
        # Wall-clock backend: threads are ignored (this process is single-
        # threaded); sizes are capped to keep profiling fast.
        from repro.embedding import (
            CircuitOramEmbedding,
            DHEEmbedding,
            LinearScanEmbedding,
            PathOramEmbedding,
        )

        rng = np.random.default_rng(size)
        indices = rng.integers(0, size, size=batch)
        if technique == "scan":
            generator = LinearScanEmbedding(size, dim, rng=0)
        elif technique == "dhe-uniform":
            generator = DHEEmbedding(size, dim, shape=DheShape(
                self.uniform_shape.k, self.uniform_shape.fc_sizes, dim), rng=0)
        elif technique == "dhe-varied":
            generator = DHEEmbedding(size, dim,
                                     shape=dhe_varied_shape(
                                         size, DheShape(self.uniform_shape.k,
                                                        self.uniform_shape.fc_sizes,
                                                        dim)),
                                     rng=0)
        elif technique == "path-oram":
            generator = PathOramEmbedding(size, dim, rng=0)
        elif technique == "circuit-oram":
            generator = CircuitOramEmbedding(size, dim, rng=0)
        else:
            raise ValueError(f"unknown technique {technique!r}")
        return time_callable(lambda: generator.generate(indices), repeats=3)

    # ------------------------------------------------------------------
    def profile(self, techniques: Iterable[str] = ("scan", "dhe-uniform"),
                sizes: Sequence[int] = DEFAULT_SIZE_GRID,
                dims: Sequence[int] = (16, 64),
                batches: Sequence[int] = (32,),
                threads_list: Sequence[int] = (1,)) -> ProfileDatabase:
        database = ProfileDatabase(platform=self.platform)
        backend = (self._modelled_latency if self.backend == "modelled"
                   else self._measured_latency)
        for technique, size, dim, batch, threads in itertools.product(
                techniques, sizes, dims, batches, threads_list):
            check_positive("table size", size)
            latency = backend(technique, size, dim, batch, threads)
            database.record(ProfileKey(technique, size, dim, batch, threads),
                            latency)
        return database
