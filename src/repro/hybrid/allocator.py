"""Online technique allocation (Algorithm 3) and hybrid-DLRM assembly.

At inference time each sparse feature picks linear scan or DHE purely from
its table size and the current execution configuration — a decision
independent of any user input, which is what keeps the hybrid scheme
oblivious (§V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.embedding.hybrid import TECHNIQUE_DHE, TECHNIQUE_SCAN, HybridEmbedding
from repro.hybrid.thresholds import ThresholdDatabase
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FeatureAllocation:
    """Technique decision for one sparse feature."""

    feature_index: int
    table_size: int
    technique: str


def allocate_by_threshold(table_sizes: Sequence[int],
                          threshold: float) -> List[FeatureAllocation]:
    """Scan at or below the threshold, DHE above (Algorithm 3's rule)."""
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    allocations = []
    for index, size in enumerate(table_sizes):
        check_positive("table size", size)
        technique = TECHNIQUE_SCAN if size <= threshold else TECHNIQUE_DHE
        allocations.append(FeatureAllocation(index, size, technique))
    return allocations


def allocate_for_configuration(table_sizes: Sequence[int],
                               thresholds: ThresholdDatabase,
                               dim: int, batch: int, threads: int
                               ) -> List[FeatureAllocation]:
    """Allocation using the profiled threshold for the live configuration."""
    threshold = thresholds.threshold(dim, batch, threads)
    if math.isinf(threshold):
        # "scan always wins" profiles report an infinite threshold; clamp to
        # the largest table so every feature scans. The empty-table-set
        # default keeps the clamp well-defined (no tables, no allocations).
        threshold = max(table_sizes, default=0.0)
    return allocate_by_threshold(table_sizes, threshold)


def apply_allocations(embeddings: Sequence[HybridEmbedding],
                      allocations: Sequence[FeatureAllocation]) -> None:
    """Flip each hybrid feature to its allocated representation."""
    if len(embeddings) != len(allocations):
        raise ValueError(
            f"{len(embeddings)} embeddings but {len(allocations)} allocations")
    for embedding, allocation in zip(embeddings, allocations):
        if embedding.num_embeddings != allocation.table_size:
            raise ValueError(
                f"feature {allocation.feature_index}: embedding has "
                f"{embedding.num_embeddings} rows but allocation expects "
                f"{allocation.table_size}")
        embedding.select(allocation.technique)


def count_scan_features(allocations: Sequence[FeatureAllocation]) -> int:
    return sum(1 for a in allocations if a.technique == TECHNIQUE_SCAN)


def allocation_latency(allocations: Sequence[FeatureAllocation],
                       backend, dim: int, batch: int, threads: int = 1,
                       varied: bool = True,
                       overhead_seconds: float = 0.0) -> float:
    """Batch latency of an allocation, resolved through an execution backend.

    This is the *single* per-table scan/DHE latency accounting: features
    execute sequentially (§IV-C1) so per-feature latencies add on top of
    ``overhead_seconds`` (e.g. the dense MLP stack). ``backend`` is any
    :class:`~repro.serving.backends.ExecutionBackend`; ``varied`` picks the
    DHE sizing rule for DHE-allocated features.
    """
    dhe_technique = "dhe-varied" if varied else "dhe-uniform"
    total = overhead_seconds
    for allocation in allocations:
        technique = (TECHNIQUE_SCAN if allocation.technique == TECHNIQUE_SCAN
                     else dhe_technique)
        total += backend.technique_latency(technique, allocation.table_size,
                                           dim, batch, threads)
    return total
