"""Switching-threshold extraction (Algorithm 2 / Fig 6).

For each execution configuration, the table size at which the linear-scan
and DHE latency curves intersect is the threshold: features with smaller
tables scan, larger ones use DHE. The intersection is interpolated
geometrically between grid points (latency curves are near power laws).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hybrid.profiler import ProfileDatabase


def intersect_curves(sizes: Sequence[int], scan: Sequence[float],
                     dhe: Sequence[float]) -> Optional[float]:
    """Table size where the scan curve crosses above the DHE curve.

    Returns ``None`` when scan never exceeds DHE on the grid (scan always
    wins) and ``0`` when scan is never cheaper (DHE always wins).
    """
    if not (len(sizes) == len(scan) == len(dhe)):
        raise ValueError("sizes/scan/dhe must have equal lengths")
    if len(sizes) < 2:
        raise ValueError("need at least two grid points")
    diffs = [s - d for s, d in zip(scan, dhe)]
    if diffs[0] >= 0:
        return 0.0
    for i in range(1, len(sizes)):
        if diffs[i] >= 0:
            # Log-linear interpolation of the crossing point.
            x0, x1 = math.log(sizes[i - 1]), math.log(sizes[i])
            y0, y1 = diffs[i - 1], diffs[i]
            t = -y0 / (y1 - y0)
            return math.exp(x0 + t * (x1 - x0))
    return None


@dataclass(frozen=True)
class ThresholdKey:
    dim: int
    batch: int
    threads: int


@dataclass
class ThresholdDatabase:
    """Per-configuration scan/DHE switching thresholds."""

    dhe_technique: str
    thresholds: Dict[ThresholdKey, float] = field(default_factory=dict)

    def threshold(self, dim: int, batch: int, threads: int) -> float:
        key = ThresholdKey(dim, batch, threads)
        if key not in self.thresholds:
            raise KeyError(f"no threshold for {key}")
        return self.thresholds[key]

    def configurations(self) -> List[ThresholdKey]:
        return sorted(self.thresholds,
                      key=lambda k: (k.dim, k.batch, k.threads))


def build_threshold_database(profile: ProfileDatabase,
                             dhe_technique: str = "dhe-uniform",
                             dims: Sequence[int] = (16, 64),
                             batches: Sequence[int] = (32,),
                             threads_list: Sequence[int] = (1,)
                             ) -> ThresholdDatabase:
    """Extract thresholds from a profiled database for every configuration.

    A missing crossing (scan always cheaper on the profiled grid) records
    ``inf``; scan never cheaper records ``0``.
    """
    database = ThresholdDatabase(dhe_technique=dhe_technique)
    for dim in dims:
        for batch in batches:
            for threads in threads_list:
                sizes = profile.profiled_sizes("scan", dim, batch, threads)
                if not sizes:
                    continue
                scan_curve = profile.curve("scan", dim, batch, threads, sizes)
                dhe_curve = profile.curve(dhe_technique, dim, batch, threads,
                                          sizes)
                crossing = intersect_curves(sizes, scan_curve, dhe_curve)
                value = math.inf if crossing is None else crossing
                database.thresholds[ThresholdKey(dim, batch, threads)] = value
    return database


def hybrid_eligible_range(threshold_db: ThresholdDatabase,
                          dim: int) -> Tuple[float, float]:
    """Min/max threshold across configurations (the red band of Fig 7).

    Tables below the min always scan; above the max always use DHE; tables
    inside the band flip depending on the runtime configuration.
    """
    values = [value for key, value in threshold_db.thresholds.items()
              if key.dim == dim and math.isfinite(value)]
    if not values:
        raise ValueError(f"no finite thresholds recorded for dim {dim}")
    return min(values), max(values)
