"""Co-located deployment planning (§IV-C2, Figs 8, 9, 13).

Builds tenant-demand descriptions for whole DLRM models (per-feature
scan/DHE mixes included) and evaluates latency/throughput as model copies
are added, using the contention model in :mod:`repro.costmodel.colocation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.costmodel.colocation import (
    TenantDemand,
    colocated_latencies,
    dhe_demand,
    replicated_latencies,
    scan_demand,
)
from repro.costmodel.latency import DheShape, dhe_varied_shape
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.hybrid import TECHNIQUE_SCAN
from repro.hybrid.allocator import FeatureAllocation
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ModelTenant:
    """Aggregate embedding-layer demand of one co-located DLRM copy."""

    demand: TenantDemand
    num_scan_features: int
    num_dhe_features: int


def dlrm_tenant(table_sizes: Sequence[int], dim: int,
                allocations: Sequence[FeatureAllocation],
                uniform_shape: DheShape, batch: int,
                varied: bool = True,
                platform: PlatformModel = DEFAULT_PLATFORM) -> ModelTenant:
    """Fold a model's per-feature demands into one tenant description.

    Features execute sequentially inside a model (§IV-C1), so latencies and
    bandwidth demands add; the LLC ask is the max single working set (the
    features do not need simultaneous residency).
    """
    if len(allocations) != len(table_sizes):
        raise ValueError("allocations must cover every table")
    solo = bandwidth = 0.0
    llc = 0.0
    num_scan = 0
    scan_latency = 0.0
    for size, allocation in zip(table_sizes, allocations):
        if allocation.technique == TECHNIQUE_SCAN:
            part = scan_demand(size, dim, batch, platform)
            num_scan += 1
            scan_latency += part.solo_latency
        else:
            shape = (dhe_varied_shape(size, uniform_shape) if varied
                     else uniform_shape)
            part = dhe_demand(shape, batch, platform)
        solo += part.solo_latency
        bandwidth += part.bandwidth_bytes
        llc = max(llc, part.llc_bytes)
    # A mixed model dilates like whatever dominates its runtime: a hybrid
    # model that scans only its smallest tables is still compute-bound.
    technique = "scan" if scan_latency > 0.5 * solo else "dhe"
    demand = TenantDemand(technique=technique, solo_latency=solo,
                          bandwidth_bytes=bandwidth, llc_bytes=llc)
    return ModelTenant(demand=demand, num_scan_features=num_scan,
                       num_dhe_features=len(table_sizes) - num_scan)


def colocation_sweep(tenant: ModelTenant, max_copies: int, batch: int,
                     platform: PlatformModel = DEFAULT_PLATFORM
                     ) -> List[Tuple[int, float, float]]:
    """(copies, per-model latency, aggregate throughput) as copies grow."""
    check_positive("max_copies", max_copies)
    results = []
    for copies in range(1, max_copies + 1):
        latencies = replicated_latencies(tenant.demand, copies, platform)
        latency = max(latencies)
        throughput = sum(batch / lat for lat in latencies)
        results.append((copies, latency, throughput))
    return results


def latency_bounded_throughput(sweep: Sequence[Tuple[int, float, float]],
                               sla_seconds: float) -> float:
    """Best throughput among co-location points meeting the SLA (Fig 13)."""
    check_positive("sla_seconds", sla_seconds)
    feasible = [throughput for _, latency, throughput in sweep
                if latency <= sla_seconds]
    return max(feasible) if feasible else 0.0


def mixed_allocation_latency(table_size: int, dim: int, total_models: int,
                             num_dhe: int, uniform_shape: DheShape,
                             batch: int, varied: bool = False,
                             platform: PlatformModel = DEFAULT_PLATFORM
                             ) -> float:
    """Mean per-model latency when ``num_dhe`` of ``total_models`` copies of
    a single-table model use DHE and the rest linear scan (Fig 9)."""
    check_positive("total_models", total_models)
    if not 0 <= num_dhe <= total_models:
        raise ValueError("num_dhe out of range")
    shape = (dhe_varied_shape(table_size, uniform_shape) if varied
             else uniform_shape)
    tenants = ([dhe_demand(shape, batch, platform)] * num_dhe
               + [scan_demand(table_size, dim, batch, platform)]
               * (total_models - num_dhe))
    latencies = colocated_latencies(tenants, platform)
    return sum(latencies) / len(latencies)
