"""Runtimes: the pluggable third layer of record/fuse/realize.

A :class:`Runtime` owns a scheduler, executes compiled
:class:`~repro.lazy.schedule.Schedule` objects, and keeps the process-wide
graph cache. :class:`NumpyRuntime` is the default — numpy plays the role
tinygrad's clang/GPU backends play, and a compiled-kernel runtime can slot
in later by implementing the same three methods.

Execution contract (what the parity tests pin):

* realizing a schedule runs *exactly* the numpy expressions eager
  execution would run, in the same order — outputs are byte-identical to
  the eager path, not merely close;
* after the first (warm-up) realization every computed node owns a
  persistent output buffer; replays write into those buffers with
  ``out=`` and allocate nothing, which is where the dispatch/allocation
  win over eager comes from;
* if the runtime carries a :class:`~repro.oblivious.trace.MemoryTracer`,
  each kernel launch is reported using the schedule's compile-time trace
  plan — input-independent by construction (see
  :mod:`repro.lazy.schedule`).

The *active* runtime is an ambient setting (:func:`use_runtime` /
:func:`set_active_runtime`). Hot paths — ``DHEEmbedding.forward``, the
vectorised linear scan — consult :func:`get_active_runtime` and fall back
to eager execution when none is installed, so default behaviour is
unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence

import numpy as np

from repro.lazy.graph import (
    BINARY_OPS,
    MOVEMENT_OPS,
    UNARY_OPS,
    LazyBuffer,
)
from repro.lazy.schedule import Schedule, Scheduler
from repro.oblivious.trace import MemoryTracer
from repro.telemetry.runtime import get_registry


def _sigmoid_exact(x: np.ndarray) -> np.ndarray:
    """The numerically-stable piecewise sigmoid, bit-identical to eager."""
    return np.where(x >= 0,
                    1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                    np.exp(np.clip(x, None, 0))
                    / (1.0 + np.exp(np.clip(x, None, 0))))


def _exec_node(node: LazyBuffer, ins: List[np.ndarray],
               out: Optional[np.ndarray]) -> np.ndarray:
    """Run one recorded op, writing into ``out`` when a buffer exists."""
    op = node.op.op
    arg = node.op.arg
    if out is not None and (out.shape != node.shape or out.dtype != node.dtype):
        out = None  # defensive: never cast through a stale buffer
    if op in BINARY_OPS:
        fn = BINARY_OPS[op]
        return fn(ins[0], ins[1]) if out is None else fn(ins[0], ins[1],
                                                         out=out)
    if op in UNARY_OPS:
        fn = UNARY_OPS[op]
        return fn(ins[0]) if out is None else fn(ins[0], out=out)
    if op == "pow":
        return (ins[0] ** arg if out is None
                else np.power(ins[0], arg, out=out))
    if op == "clip":
        return np.clip(ins[0], arg[0], arg[1], out=out)
    if op == "sigmoid":
        result = _sigmoid_exact(ins[0])
        if out is None:
            return result
        out[...] = result
        return out
    if op == "sum":
        axis, keepdims = arg
        return np.sum(ins[0], axis=axis, keepdims=keepdims, out=out)
    if op == "max":
        axis, keepdims = arg
        return np.amax(ins[0], axis=axis, keepdims=keepdims, out=out)
    if op == "matmul":
        return (np.matmul(ins[0], ins[1]) if out is None
                else np.matmul(ins[0], ins[1], out=out))
    raise ValueError(f"runtime cannot execute op {op!r}")


class Runtime:
    """Protocol every lazy runtime implements (subclassing optional)."""

    name: str = "abstract"
    scheduler: Scheduler
    tracer: Optional[MemoryTracer]

    def execute(self, schedule: Schedule, bindings: Sequence[np.ndarray],
                buffers: Dict[int, np.ndarray]) -> np.ndarray:
        """Realize one schedule against bound inputs + persistent buffers."""
        raise NotImplementedError

    def captured(self, key: Hashable, builder: Callable[[], "object"]):
        """Graph-cache lookup: return the cached capture or build + cache."""
        raise NotImplementedError


class NumpyRuntime(Runtime):
    """Default runtime: fused schedules over numpy with buffer reuse."""

    name = "numpy"

    def __init__(self, scheduler: Optional[Scheduler] = None,
                 tracer: Optional[MemoryTracer] = None) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.tracer = tracer
        self._cache: Dict[Hashable, object] = {}

    # ------------------------------------------------------------------
    # Graph cache
    # ------------------------------------------------------------------
    def captured(self, key: Hashable, builder: Callable[[], "object"]):
        graph = self._cache.get(key)
        if graph is None:
            graph = builder()
            self._cache[key] = graph
            get_registry().counter("lazy.cache_misses_total").inc()
        else:
            get_registry().counter("lazy.cache_hits_total").inc()
        return graph

    def cache_size(self) -> int:
        return len(self._cache)

    def cached_graphs(self) -> List["object"]:
        """The cached captures, in insertion order (bench/tests introspect)."""
        return list(self._cache.values())

    def clear_cache(self) -> None:
        """Drop every cached capture (e.g. after rebinding parameters)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, schedule: Schedule, bindings: Sequence[np.ndarray],
                buffers: Dict[int, np.ndarray]) -> np.ndarray:
        values: Dict[int, np.ndarray] = {
            id(placeholder): array
            for placeholder, array in zip(schedule.inputs, bindings)}

        def resolve(node: LazyBuffer) -> np.ndarray:
            cached = values.get(id(node))
            if cached is not None:
                return cached
            if node.op is None:
                if node.data is None:
                    raise RuntimeError(
                        f"unbound placeholder {node.name!r} in schedule "
                        f"{schedule.name!r}")
                return node.data
            opname = node.op.op
            if opname in MOVEMENT_OPS:
                src = resolve(node.op.srcs[0])
                if opname == "reshape":
                    view = src.reshape(node.op.arg)
                elif opname == "transpose":
                    view = src.transpose(node.op.arg)
                else:
                    view = np.broadcast_to(src, node.op.arg)
                values[id(node)] = view
                return view
            raise RuntimeError(
                f"value of {opname!r} requested before its kernel ran")

        tracer = self.tracer
        for kernel in schedule.kernels:
            if tracer is not None:
                if schedule.dynamic_trace is not None:
                    head_inputs = [resolve(src)
                                   for src in kernel.nodes[0].op.srcs]
                    event = schedule.trace_events[kernel.index]
                    tracer.record(event.op, event.region,
                                  schedule.dynamic_trace(kernel, head_inputs))
                else:
                    event = schedule.trace_events[kernel.index]
                    tracer.record(event.op, event.region, event.address)
            for node in kernel.nodes:
                ins = [resolve(src) for src in node.op.srcs]
                result = _exec_node(node, ins, buffers.get(id(node)))
                buffers.setdefault(id(node), result)
                values[id(node)] = result
        return resolve(schedule.output)


# ----------------------------------------------------------------------
# The ambient runtime: what the hot paths consult
# ----------------------------------------------------------------------
_ACTIVE_RUNTIME: Optional[Runtime] = None


def get_active_runtime() -> Optional[Runtime]:
    """The runtime hot paths record into, or ``None`` for eager execution."""
    return _ACTIVE_RUNTIME


def set_active_runtime(runtime: Optional[Runtime]) -> Optional[Runtime]:
    """Install ``runtime`` process-wide; returns the previous one."""
    global _ACTIVE_RUNTIME
    previous = _ACTIVE_RUNTIME
    _ACTIVE_RUNTIME = runtime
    return previous


@contextmanager
def use_runtime(runtime: Runtime) -> Iterator[Runtime]:
    """Scope a runtime: lazy capture inside, eager behaviour restored after."""
    previous = set_active_runtime(runtime)
    try:
        yield runtime
    finally:
        set_active_runtime(previous)
