"""Graph capture: record a function once, replay it allocation-free.

This is the piece the serving hot paths use directly. ``capture(fn,
examples)`` calls ``fn`` with placeholder :class:`LazyBuffer` inputs under
``repro.nn``'s no-grad mode, so every tensor op *records* instead of
executing; the resulting graph is fused by the runtime's scheduler into a
:class:`CapturedGraph` that can be called like a function.

Capture semantics worth knowing:

* **weights are captured by reference.** A ``Parameter``'s array enters
  the graph as a source buffer (often through a transpose *view*), so the
  in-place updates the optimisers perform (``param.data -= ...``) are
  visible to subsequent replays with no re-capture. Rebinding ``.data``
  to a fresh array, however, silently orphans the capture — call
  ``runtime.clear_cache()`` (or the owner's ``invalidate_captures()``)
  after doing that.
* **captures are inference-only.** Recording happens under no-grad; a
  captured graph carries no autograd closures. Training paths stay eager.
* **replays are byte-identical.** The runtime executes the same numpy
  expressions eager execution would, so a captured graph is a drop-in for
  the eager result — the trace-parity tests pin this for the DHE decoder,
  the masked-onehot scan, and the DLRM MLPs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.lazy.graph import LazyBuffer
from repro.lazy.runtime import NumpyRuntime, Runtime
from repro.lazy.schedule import Schedule
from repro.telemetry.runtime import get_registry


class CapturedGraph:
    """A compiled schedule plus its persistent buffers; callable."""

    def __init__(self, schedule: Schedule, runtime: Runtime,
                 name: str = "capture") -> None:
        self.schedule = schedule
        self.runtime = runtime
        self.name = name
        self.replays = 0
        self._buffers: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def signature(self) -> str:
        return self.schedule.output.signature()

    @property
    def num_kernels(self) -> int:
        return self.schedule.num_kernels

    @property
    def num_ops(self) -> int:
        return self.schedule.num_ops

    @property
    def dispatch_ratio(self) -> float:
        return self.schedule.dispatch_ratio

    def buffer_bytes(self) -> int:
        """Persistent buffer-pool footprint after warm-up."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def reset_buffers(self) -> None:
        self._buffers.clear()

    def __repr__(self) -> str:
        return (f"CapturedGraph({self.name!r}, ops={self.num_ops}, "
                f"kernels={self.num_kernels}, replays={self.replays})")

    # ------------------------------------------------------------------
    def __call__(self, *arrays: np.ndarray) -> np.ndarray:
        inputs = self.schedule.inputs
        if len(arrays) != len(inputs):
            raise ValueError(
                f"capture {self.name!r} takes {len(inputs)} inputs, "
                f"got {len(arrays)}")
        bound = []
        for placeholder, array in zip(inputs, arrays):
            array = np.asarray(array)
            if array.shape != placeholder.shape:
                raise ValueError(
                    f"capture {self.name!r} input {placeholder.name!r} "
                    f"expects shape {placeholder.shape}, got {array.shape}; "
                    f"captures are per-shape — cache one per batch shape")
            if array.dtype != placeholder.dtype:
                raise TypeError(
                    f"capture {self.name!r} input {placeholder.name!r} "
                    f"expects dtype {placeholder.dtype}, got {array.dtype}")
            bound.append(array)
        result = self.runtime.execute(self.schedule, bound, self._buffers)
        self.replays += 1
        registry = get_registry()
        registry.counter("lazy.replays_total").inc()
        registry.counter("lazy.kernels_executed_total").inc(
            self.schedule.num_kernels)
        # The output buffer is reused by the next replay; hand back a copy
        # so callers own their result (eager semantics).
        return np.array(result, copy=True)


def capture(fn: Callable[..., object],
            example_inputs: Sequence[np.ndarray],
            runtime: Optional[Runtime] = None,
            name: str = "capture") -> CapturedGraph:
    """Record ``fn`` once against placeholders shaped like the examples.

    ``fn`` receives one :class:`LazyBuffer` per example (wrap them in
    ``Tensor`` freely — the ``repro.nn`` stack records through) and must
    return a lazy result: a ``LazyBuffer`` or a ``Tensor`` whose payload
    is one. Eager escapes (calling ``.item()``, branching on values)
    cannot be recorded and raise here.
    """
    from repro.nn.tensor import no_grad  # deferred: tensor imports repro.lazy

    runtime = runtime if runtime is not None else NumpyRuntime()
    placeholders = []
    for index, example in enumerate(example_inputs):
        example = np.asarray(example)
        placeholders.append(LazyBuffer.placeholder(
            example.shape, example.dtype, name=f"{name}.in{index}"))

    registry = get_registry()
    with registry.span("lazy.capture", capture=name,
                       inputs=len(placeholders)):
        with no_grad():
            result = fn(*placeholders)
        output = result if isinstance(result, LazyBuffer) else getattr(
            result, "data", result)
        if not isinstance(output, LazyBuffer):
            raise TypeError(
                f"capture of {name!r} did not stay lazy: the function "
                f"returned {type(result).__name__}; it must be a pure "
                f"recordable computation over its inputs")
        schedule = runtime.scheduler.compile(output, placeholders, name=name)
    registry.counter("lazy.captures_total").inc()
    return CapturedGraph(schedule, runtime, name=name)
