"""Lazy graph recording: the first layer of the record/fuse/realize pipeline.

A :class:`LazyBuffer` is a node in a dataflow graph. Nothing is computed
when one is created — arithmetic on lazy buffers only *records* the
operation (a :class:`LazyOp`), and the graph is turned into numbers later
by a scheduler + runtime (:mod:`repro.lazy.schedule`,
:mod:`repro.lazy.runtime`).

Why this matters here: the paper's oblivious hot paths (the DHE decoder
stack, the masked-onehot linear scan) execute the *same* graph for every
batch of a given shape — obliviousness means the structure cannot depend
on the secret indices. A recorded graph can therefore be scheduled once,
cached per (batch shape, table config), and replayed byte-identically,
eliminating the per-op Python/autograd dispatch that eager execution pays
on every one of the millions of lookups the serving path issues.

Shapes and dtypes are inferred eagerly at record time (using zero-size
numpy probes, so promotion semantics match numpy exactly); values are not.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Op tables
# ----------------------------------------------------------------------
#: unary elementwise ops: name -> ufunc
UNARY_OPS: Dict[str, Callable] = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "tanh": np.tanh,
    "abs": np.absolute,
    "sign": np.sign,
}

#: binary elementwise ops: name -> ufunc
BINARY_OPS: Dict[str, Callable] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
    "maximum": np.maximum,
    "greater": np.greater,
    "greater_equal": np.greater_equal,
    "less": np.less,
    "less_equal": np.less_equal,
}

#: elementwise ops that carry a scalar/tuple argument
ARG_ELEMENTWISE_OPS = ("pow", "clip", "sigmoid")

#: every op the scheduler may fuse into a single kernel
ELEMENTWISE_OPS = frozenset(UNARY_OPS) | frozenset(BINARY_OPS) | frozenset(
    ARG_ELEMENTWISE_OPS)

#: ops that produce views — folded into kernel input bindings, zero kernels
MOVEMENT_OPS = frozenset({"reshape", "transpose", "broadcast"})

#: axis reductions — one kernel each
REDUCE_OPS = frozenset({"sum", "max"})

#: contractions — one kernel each
CONTRACTION_OPS = frozenset({"matmul"})

#: ufunc object -> lazy op name, for ``__array_ufunc__`` dispatch
_UFUNC_TO_OP: Dict[Any, str] = {
    np.add: "add", np.subtract: "sub", np.multiply: "mul",
    np.true_divide: "div", np.maximum: "maximum",
    np.greater: "greater", np.greater_equal: "greater_equal",
    np.less: "less", np.less_equal: "less_equal",
    np.negative: "neg", np.exp: "exp", np.log: "log", np.tanh: "tanh",
    np.absolute: "abs", np.sign: "sign", np.matmul: "matmul",
}


@dataclass(frozen=True)
class LazyOp:
    """One recorded operation: opcode, source buffers, static argument."""

    op: str
    srcs: Tuple["LazyBuffer", ...]
    arg: Any = None

    def __repr__(self) -> str:
        return f"LazyOp({self.op}, srcs={len(self.srcs)}, arg={self.arg!r})"


def _matmul_shape(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Result shape of ``a @ b`` under numpy's matmul rules."""
    if not a or not b:
        raise ValueError("matmul operands must be at least 1-D")
    a_vec, b_vec = len(a) == 1, len(b) == 1
    a2 = (1,) + a if a_vec else a
    b2 = b + (1,) if b_vec else b
    if a2[-1] != b2[-2]:
        raise ValueError(f"matmul shape mismatch: {a} @ {b}")
    batch = np.broadcast_shapes(a2[:-2], b2[:-2])
    core: Tuple[int, ...] = (a2[-2], b2[-1])
    if a_vec:
        core = core[1:]
    if b_vec:
        core = core[:-1]
    return tuple(batch) + core


def _reduce_shape(shape: Tuple[int, ...], axis, keepdims: bool
                  ) -> Tuple[int, ...]:
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = tuple(a % len(shape) for a in axes)
    if keepdims:
        return tuple(1 if i in axes else n for i, n in enumerate(shape))
    return tuple(n for i, n in enumerate(shape) if i not in axes)


def _normalize_reshape(shape: Tuple[int, ...], new_shape: Tuple[int, ...]
                       ) -> Tuple[int, ...]:
    new_shape = tuple(int(n) for n in new_shape)
    if -1 in new_shape:
        known = int(np.prod([n for n in new_shape if n != -1], dtype=np.int64))
        total = int(np.prod(shape, dtype=np.int64))
        if known == 0 or total % known:
            raise ValueError(f"cannot reshape {shape} into {new_shape}")
        new_shape = tuple(total // known if n == -1 else n for n in new_shape)
    if int(np.prod(new_shape, dtype=np.int64)) != int(np.prod(shape,
                                                              dtype=np.int64)):
        raise ValueError(f"cannot reshape {shape} into {new_shape}")
    return new_shape


def _probe(dtype: np.dtype) -> np.ndarray:
    """A zero-size array used to resolve numpy promotion exactly."""
    return np.empty((0,), dtype=dtype)


class LazyBuffer:
    """A graph node: either a source array/placeholder or a recorded op.

    Source buffers hold a reference to a concrete ``numpy`` array (weights,
    tables — updated in place by the optimiser, so captures stay fresh) or
    are *placeholders* bound to fresh arrays at every realization (the
    per-batch inputs). Computed buffers hold a :class:`LazyOp`.
    """

    __slots__ = ("shape", "dtype", "op", "data", "name")

    def __init__(self, shape: Tuple[int, ...], dtype,
                 op: Optional[LazyOp] = None,
                 data: Optional[np.ndarray] = None, name: str = "") -> None:
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self.op = op
        self.data = data
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_data(cls, array: np.ndarray, name: str = "") -> "LazyBuffer":
        """Wrap a concrete array as a source node (no copy)."""
        array = np.asarray(array)
        return cls(array.shape, array.dtype, data=array, name=name)

    @classmethod
    def placeholder(cls, shape: Tuple[int, ...], dtype,
                    name: str = "") -> "LazyBuffer":
        """An input slot: bound to a fresh array at each realization."""
        return cls(tuple(shape), dtype, name=name)

    @property
    def is_source(self) -> bool:
        return self.op is None

    @property
    def is_placeholder(self) -> bool:
        return self.op is None and self.data is None

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    def __repr__(self) -> str:
        kind = (f"placeholder {self.name!r}" if self.is_placeholder
                else "source" if self.is_source else self.op.op)
        return f"LazyBuffer({kind}, shape={self.shape}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(value) -> "LazyBuffer":
        if isinstance(value, LazyBuffer):
            return value
        return LazyBuffer.from_data(np.asarray(value))

    def _binary(self, op: str, other, reverse: bool = False) -> "LazyBuffer":
        other = LazyBuffer._wrap(other)
        left, right = (other, self) if reverse else (self, other)
        out_dtype = BINARY_OPS[op](_probe(left.dtype), _probe(right.dtype)).dtype
        shape = np.broadcast_shapes(left.shape, right.shape)
        return LazyBuffer(shape, out_dtype,
                          op=LazyOp(op, (left, right)))

    def _unary(self, op: str) -> "LazyBuffer":
        out_dtype = UNARY_OPS[op](_probe(self.dtype)).dtype
        return LazyBuffer(self.shape, out_dtype, op=LazyOp(op, (self,)))

    # ------------------------------------------------------------------
    # Elementwise arithmetic (mirrors the ndarray surface Tensor uses)
    # ------------------------------------------------------------------
    def __add__(self, other):
        return self._binary("add", other)

    def __radd__(self, other):
        return self._binary("add", other, reverse=True)

    def __sub__(self, other):
        return self._binary("sub", other)

    def __rsub__(self, other):
        return self._binary("sub", other, reverse=True)

    def __mul__(self, other):
        return self._binary("mul", other)

    def __rmul__(self, other):
        return self._binary("mul", other, reverse=True)

    def __truediv__(self, other):
        return self._binary("div", other)

    def __rtruediv__(self, other):
        return self._binary("div", other, reverse=True)

    def __neg__(self):
        return self._unary("neg")

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("lazy ** only supports scalar exponents")
        out_dtype = (_probe(self.dtype) ** exponent).dtype
        return LazyBuffer(self.shape, out_dtype,
                          op=LazyOp("pow", (self,), arg=exponent))

    def __gt__(self, other):
        return self._binary("greater", other)

    def __ge__(self, other):
        return self._binary("greater_equal", other)

    def __lt__(self, other):
        return self._binary("less", other)

    def __le__(self, other):
        return self._binary("less_equal", other)

    def __matmul__(self, other):
        return self.matmul(other)

    def __rmatmul__(self, other):
        return LazyBuffer._wrap(other).matmul(self)

    def matmul(self, other) -> "LazyBuffer":
        other = LazyBuffer._wrap(other)
        shape = _matmul_shape(self.shape, other.shape)
        out_dtype = np.result_type(self.dtype, other.dtype)
        return LazyBuffer(shape, out_dtype, op=LazyOp("matmul", (self, other)))

    # ------------------------------------------------------------------
    # Non-operator elementwise
    # ------------------------------------------------------------------
    def exp(self) -> "LazyBuffer":
        return self._unary("exp")

    def log(self) -> "LazyBuffer":
        return self._unary("log")

    def tanh(self) -> "LazyBuffer":
        return self._unary("tanh")

    def sigmoid(self) -> "LazyBuffer":
        """Numerically-stable sigmoid (realized with the eager expression)."""
        return LazyBuffer(self.shape, np.dtype(np.float64),
                          op=LazyOp("sigmoid", (self,)))

    def clip(self, low=None, high=None, out=None, **kwargs) -> "LazyBuffer":
        # matches the ndarray.clip method surface np.clip dispatches to
        if out is not None or kwargs:
            raise TypeError("lazy clip does not support out=/kwargs")
        out_dtype = np.clip(_probe(self.dtype), low, high).dtype
        return LazyBuffer(self.shape, out_dtype,
                          op=LazyOp("clip", (self,), arg=(low, high)))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce(self, op: str, axis, keepdims: bool) -> "LazyBuffer":
        shape = _reduce_shape(self.shape, axis, keepdims)
        if op == "sum":
            out_dtype = _probe(self.dtype).sum().dtype
        else:
            out_dtype = self.dtype
        arg = (axis if not isinstance(axis, list) else tuple(axis), keepdims)
        return LazyBuffer(shape, out_dtype, op=LazyOp(op, (self,), arg=arg))

    def sum(self, axis=None, keepdims: bool = False) -> "LazyBuffer":
        return self._reduce("sum", axis, keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "LazyBuffer":
        if self.size == 0:
            raise ValueError("zero-size array reduction over max")
        return self._reduce("max", axis, keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "LazyBuffer":
        count = (self.size if axis is None else int(np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple)
                                     else (axis,))], dtype=np.int64)))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Movement (views; never a kernel)
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "LazyBuffer":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        new_shape = _normalize_reshape(self.shape, shape)
        return LazyBuffer(new_shape, self.dtype,
                          op=LazyOp("reshape", (self,), arg=new_shape))

    def transpose(self, *axes) -> "LazyBuffer":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list, np.ndarray)):
            axes = tuple(int(a) for a in axes[0])
        if sorted(a % self.ndim for a in axes) != list(range(self.ndim)):
            raise ValueError(f"bad transpose axes {axes} for ndim {self.ndim}")
        axes = tuple(a % self.ndim for a in axes)
        new_shape = tuple(self.shape[a] for a in axes)
        return LazyBuffer(new_shape, self.dtype,
                          op=LazyOp("transpose", (self,), arg=axes))

    @property
    def T(self) -> "LazyBuffer":
        return self.transpose()

    def broadcast_to(self, shape) -> "LazyBuffer":
        shape = tuple(int(n) for n in shape)
        np.broadcast_shapes(self.shape, shape)  # validates
        return LazyBuffer(shape, self.dtype,
                          op=LazyOp("broadcast", (self,), arg=shape))

    # ------------------------------------------------------------------
    # numpy interop: ndarray (ufunc) LazyBuffer records lazily
    # ------------------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs.get("out") is not None:
            return NotImplemented
        name = _UFUNC_TO_OP.get(ufunc)
        if name is None:
            return NotImplemented
        if name == "matmul":
            return LazyBuffer._wrap(inputs[0]).matmul(inputs[1])
        if name in UNARY_OPS:
            return LazyBuffer._wrap(inputs[0])._unary(name)
        left, right = inputs
        if isinstance(left, LazyBuffer):
            return left._binary(name, right)
        return LazyBuffer._wrap(left)._binary(name, right)

    # ------------------------------------------------------------------
    # Graph utilities
    # ------------------------------------------------------------------
    def toposort(self) -> List["LazyBuffer"]:
        """All reachable nodes, parents before children."""
        order: List[LazyBuffer] = []
        visited = set()
        stack: List[Tuple[LazyBuffer, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node.op is not None:
                for src in node.op.srcs:
                    if id(src) not in visited:
                        stack.append((src, False))
        return order

    def signature(self, include_source_identity: bool = True) -> str:
        """Structural content hash of the graph rooted at this buffer.

        This is the graph-cache key material: two graphs with the same
        signature schedule identically. ``include_source_identity`` mixes
        in the identity of concrete source arrays (weights/tables), so a
        capture against one table never answers for another; disable it to
        compare pure structure across processes (tests do).
        """
        order = self.toposort()
        index = {id(node): i for i, node in enumerate(order)}
        hasher = hashlib.sha256()
        for node in order:
            if node.op is None:
                identity = ("input" if node.data is None
                            else id(node.data) if include_source_identity
                            else "source")
                line = f"src|{node.name}|{identity}|{node.shape}|{node.dtype}"
            else:
                srcs = ",".join(str(index[id(s)]) for s in node.op.srcs)
                line = (f"{node.op.op}|{node.op.arg!r}|{srcs}"
                        f"|{node.shape}|{node.dtype}")
            hasher.update(line.encode())
            hasher.update(b";")
        return hasher.hexdigest()

    def realize(self, runtime=None) -> np.ndarray:
        """Convenience one-off realization (no placeholders allowed)."""
        from repro.lazy.capture import CapturedGraph
        from repro.lazy.runtime import NumpyRuntime

        runtime = runtime if runtime is not None else NumpyRuntime()
        schedule = runtime.scheduler.compile(self, inputs=())
        return CapturedGraph(schedule, runtime, name="realize")()


def count_dispatch_ops(output: LazyBuffer) -> int:
    """Recorded op count — what eager execution would dispatch one by one."""
    return sum(1 for node in output.toposort() if node.op is not None)
