"""``python -m repro.lazy.bench`` — the gated eager-vs-captured dispatch sim.

Sweeps the three rewired oblivious hot paths over the Fig 12 batch sizes
(1, 8, 32, 128):

* the DHE decoder stack (``DHEEmbedding.forward`` under an active runtime),
* the masked-onehot linear scan (``linear_scan_batch_vectorized``),
* the DLRM Kaggle bottom MLP (the ``repro.nn`` layer stack via ``capture``),

and reports, per cell, the recorded-op count (what eager execution
dispatches one Python/autograd op at a time), the fused kernel count the
captured graph replays instead, and whether replay output is *byte*-
identical to eager. Five gates with teeth:

* **parity** — every captured replay bit-for-bit equals eager;
* **fusion** — every cell fuses (kernels strictly fewer than ops);
* **graph_cache** — re-running a swept batch shape hits the runtime cache
  (no re-capture);
* **buffer_reuse** — replays reuse warm-up buffers (steady-state footprint
  is flat);
* **audit_oblivious / leak_detector_teeth** — the
  :class:`~repro.telemetry.audit.LeakageAuditor` finds the honest
  scheduler's kernel-launch traces secret-independent, and *catches* the
  in-tree :class:`~repro.lazy.schedule.IndexLeakingScheduler` negative
  control.

The JSON report contains only counted, seed-determined quantities — two
runs with the same seed produce byte-identical files (CI ``cmp``-gates
this). Wall-clock comparisons are printed to stdout as information only.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

import numpy as np

from repro.costmodel.latency import DheShape
from repro.lazy.capture import CapturedGraph, capture
from repro.lazy.runtime import NumpyRuntime, use_runtime
from repro.lazy.schedule import IndexLeakingScheduler
from repro.oblivious.linear_scan import linear_scan_batch_vectorized
from repro.oblivious.trace import MemoryTracer
from repro.telemetry.audit import MODE_EXACT, AuditSubject, LeakageAuditor

#: Fig 12 serving batch sizes
BATCHES = (1, 8, 32, 128)
#: table geometry for the scan/DHE paths (a Fig 13-sized small table)
TABLE_ROWS = 4096
EMBEDDING_DIM = 16
#: bench-sized DHE decoder (same structure as DLRM-DHE, scaled for CI)
BENCH_DHE_SHAPE = DheShape(k=256, fc_sizes=(128, 64), out_dim=EMBEDDING_DIM)
#: DLRM Kaggle bottom MLP widths (13 dense features in, 16 out)
MLP_LAYER_SIZES = (13, 512, 256, 64, 16)
#: audit geometry (mirrors the standing audit's small subjects)
AUDIT_ROWS = 16
AUDIT_DIM = 4
AUDIT_SECRET_LENGTH = 12


def _audit_secrets() -> List[Sequence[int]]:
    """Contrasting secrets: hammer-first, hammer-last, mixed sweep."""
    return [
        [0] * AUDIT_SECRET_LENGTH,
        [AUDIT_ROWS - 1] * AUDIT_SECRET_LENGTH,
        [index % AUDIT_ROWS for index in range(AUDIT_SECRET_LENGTH)],
    ]


def _cell(path: str, batch: int, graph: CapturedGraph,
          parity: bool) -> Dict[str, object]:
    return {
        "path": path,
        "batch": batch,
        "eager_ops": graph.num_ops,
        "kernels": graph.num_kernels,
        "dispatch_ratio": round(graph.dispatch_ratio, 4),
        "buffer_bytes": graph.buffer_bytes(),
        "replays": graph.replays,
        "parity": parity,
        # structural hash only: the default signature mixes in source-array
        # identity (id()), which is process-specific — not reproducible
        "signature": graph.schedule.output.signature(
            include_source_identity=False)[:16],
    }


def _find_graph(runtime: NumpyRuntime, name: str) -> CapturedGraph:
    for graph in runtime.cached_graphs():
        if getattr(graph, "name", "") == name:
            return graph
    raise KeyError(f"no cached capture named {name!r}")


def run_bench(seed: int = 0) -> Dict[str, object]:
    """The full sweep + gates; deterministic for a given seed."""
    from repro.embedding.dhe import DHEEmbedding
    from repro.nn.layers import MLP
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(seed)
    runtime = NumpyRuntime()

    dhe = DHEEmbedding(TABLE_ROWS, EMBEDDING_DIM, shape=BENCH_DHE_SHAPE,
                       rng=seed)
    dhe.eval()
    table = rng.normal(size=(TABLE_ROWS, EMBEDDING_DIM))
    mlp = MLP(MLP_LAYER_SIZES, rng=seed)
    mlp.eval()

    cells: List[Dict[str, object]] = []
    parity_ok = True

    for batch in BATCHES:
        indices = rng.integers(0, TABLE_ROWS, size=batch)
        dense = rng.normal(size=(batch, MLP_LAYER_SIZES[0]))

        # --- DHE decode (capture happens inside forward) ---------------
        eager = dhe.forward(indices).data
        with use_runtime(runtime):
            warm = dhe.forward(indices).data
            replay = dhe.forward(indices).data
        graph = _find_graph(runtime, f"dhe.decode.b{batch}")
        parity = (eager.tobytes() == warm.tobytes() == replay.tobytes())
        parity_ok = parity_ok and parity
        cells.append(_cell("dhe-decode", batch, graph, parity))

        # --- masked-onehot scan ----------------------------------------
        eager = linear_scan_batch_vectorized(table, indices)
        with use_runtime(runtime):
            warm = linear_scan_batch_vectorized(table, indices)
            replay = linear_scan_batch_vectorized(table, indices)
        graph = _find_graph(runtime, f"scan.matmul.b{batch}")
        parity = (eager.tobytes() == warm.tobytes() == replay.tobytes())
        parity_ok = parity_ok and parity
        cells.append(_cell("scan", batch, graph, parity))

        # --- DLRM bottom MLP (direct capture of the nn stack) ----------
        eager = mlp(Tensor(dense)).data
        graph = runtime.captured(
            ("bench.mlp", dense.shape),
            lambda: capture(lambda x: mlp(Tensor(x)), [dense],
                            runtime=runtime, name=f"mlp.b{batch}"))
        warm = graph(dense)
        replay = graph(dense)
        parity = (eager.tobytes() == warm.tobytes() == replay.tobytes())
        parity_ok = parity_ok and parity
        cells.append(_cell("dlrm-mlp", batch, graph, parity))

    # A single-op graph (the scan's one matmul) has nothing to fuse and
    # legitimately maps 1 op -> 1 kernel; fusion must win wherever there
    # is a chain to collapse, and may never emit more kernels than ops.
    fusion_ok = all(
        cell["kernels"] < cell["eager_ops"] if cell["eager_ops"] > 1
        else cell["kernels"] == cell["eager_ops"]
        for cell in cells)

    # --- graph_cache: replaying a swept shape must not re-capture -------
    cache_before = runtime.cache_size()
    probe = rng.integers(0, TABLE_ROWS, size=BATCHES[-1])
    with use_runtime(runtime):
        dhe.forward(probe)
        linear_scan_batch_vectorized(table, probe)
    cache_ok = runtime.cache_size() == cache_before

    # --- buffer_reuse: steady-state footprint is flat across replays ----
    graph = _find_graph(runtime, f"dhe.decode.b{BATCHES[-1]}")
    bytes_before = graph.buffer_bytes()
    with use_runtime(runtime):
        dhe.forward(probe)
    buffer_ok = graph.buffer_bytes() == bytes_before and graph.replays >= 3

    # --- leakage audit over the fused kernels ---------------------------
    audit_dhe = DHEEmbedding(AUDIT_ROWS, AUDIT_DIM, k=16, fc_sizes=(16,),
                             num_buckets=1024, rng=seed)
    audit_dhe.eval()
    audit_table = np.random.default_rng(seed).normal(
        size=(AUDIT_ROWS, AUDIT_DIM))

    def run_lazy_dhe(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        with use_runtime(NumpyRuntime(tracer=tracer)):
            audit_dhe.generate_traced(np.asarray(secret), tracer)

    def run_lazy_scan(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        with use_runtime(NumpyRuntime(tracer=tracer)):
            linear_scan_batch_vectorized(audit_table, secret)

    def run_leaky_scan(tracer: MemoryTracer, secret: Sequence[int]) -> None:
        leaky = NumpyRuntime(scheduler=IndexLeakingScheduler(), tracer=tracer)
        with use_runtime(leaky):
            linear_scan_batch_vectorized(audit_table, secret)

    auditor = LeakageAuditor()
    report = auditor.run([
        AuditSubject("lazy-dhe-decode", run_lazy_dhe, _audit_secrets(),
                     mode=MODE_EXACT),
        AuditSubject("lazy-scan", run_lazy_scan, _audit_secrets(),
                     mode=MODE_EXACT),
        AuditSubject("index-leaking-scheduler", run_leaky_scan,
                     _audit_secrets(), mode=MODE_EXACT,
                     expect_oblivious=False),
    ])
    audit_ok = (report.finding("lazy-dhe-decode").passed
                and report.finding("lazy-scan").passed)
    teeth_ok = report.finding("index-leaking-scheduler").leak_detected

    gates = {
        "parity": parity_ok,
        "fusion": fusion_ok,
        "graph_cache": cache_ok,
        "buffer_reuse": buffer_ok,
        "audit_oblivious": audit_ok,
        "leak_detector_teeth": teeth_ok,
    }
    gates["passed"] = all(gates.values())

    return {
        "seed": seed,
        "batches": list(BATCHES),
        "table_rows": TABLE_ROWS,
        "embedding_dim": EMBEDDING_DIM,
        "dhe_shape": {"k": BENCH_DHE_SHAPE.k,
                      "fc_sizes": list(BENCH_DHE_SHAPE.fc_sizes),
                      "out_dim": BENCH_DHE_SHAPE.out_dim},
        "mlp_layer_sizes": list(MLP_LAYER_SIZES),
        "runtime": runtime.name,
        "cached_graphs": runtime.cache_size(),
        "cells": cells,
        "audit": report.to_dict(),
        "gates": gates,
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable sweep summary (deterministic, mirrors the JSON)."""
    lines = [f"lazy bench (seed={report['seed']}, "
             f"runtime={report['runtime']}, "
             f"batches={report['batches']})"]
    for cell in report["cells"]:
        lines.append(
            f"  {cell['path']:>10} b={cell['batch']:<4} "
            f"eager-ops={cell['eager_ops']:<3} kernels={cell['kernels']:<3} "
            f"dispatch-ratio={cell['dispatch_ratio']:.2f}x  "
            f"buffers={cell['buffer_bytes'] / 1024:.1f}KiB  "
            f"parity={'ok' if cell['parity'] else 'MISMATCH'}")
    lines.append(f"  cached graphs: {report['cached_graphs']}")
    gates = report["gates"]
    verdicts = "  ".join(f"{name}={'PASS' if ok else 'FAIL'}"
                         for name, ok in gates.items() if name != "passed")
    lines.append(f"  gates: {verdicts}")
    return "\n".join(lines)


def _wallclock_note(seed: int) -> str:
    """Informational eager-vs-replay timing (stdout only, never in JSON)."""
    from repro.nn.layers import MLP
    from repro.nn.tensor import Tensor
    from repro.utils.timing import time_callable

    rng = np.random.default_rng(seed)
    mlp = MLP(MLP_LAYER_SIZES, rng=seed)
    mlp.eval()
    dense = rng.normal(size=(BATCHES[-1], MLP_LAYER_SIZES[0]))
    graph = capture(lambda x: mlp(Tensor(x)), [dense], name="timing.mlp")
    graph(dense)  # warm-up
    eager_s = time_callable(lambda: mlp(Tensor(dense)), repeats=5,
                            metric=None)
    replay_s = time_callable(lambda: graph(dense), repeats=5, metric=None)
    return (f"wall-clock (informational, batch={BATCHES[-1]} MLP): "
            f"eager {eager_s * 1e6:.0f}us vs replay {replay_s * 1e6:.0f}us "
            f"({eager_s / max(replay_s, 1e-12):.2f}x)")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Eager-vs-captured dispatch sweep over the oblivious "
                    "hot paths, with parity and leakage gates.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic bench report")
    parser.add_argument("--no-timing", action="store_true",
                        help="skip the informational wall-clock comparison")
    args = parser.parse_args(argv)

    report = run_bench(seed=args.seed)
    print(render(report))
    if not args.no_timing:
        print(_wallclock_note(args.seed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
