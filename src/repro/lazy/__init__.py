"""Lazy graph capture + fused execution for the oblivious hot paths.

The three-layer pipeline (record -> fuse -> realize):

* :mod:`repro.lazy.graph` — :class:`LazyBuffer`/:class:`LazyOp` graph
  recording (arithmetic builds a graph instead of computing);
* :mod:`repro.lazy.schedule` — the fusing :class:`Scheduler` (elementwise
  chains and movement ops collapse into single kernels) plus the
  :class:`IndexLeakingScheduler` negative control the leakage audit
  catches;
* :mod:`repro.lazy.runtime` — the pluggable :class:`Runtime` protocol and
  the default :class:`NumpyRuntime` with graph-capture caching and buffer
  reuse, installed ambiently via :func:`use_runtime`.

:func:`capture` records a function once and returns a
:class:`CapturedGraph` that replays byte-identically to eager execution.
``python -m repro.lazy.bench`` runs the gated eager-vs-captured dispatch
comparison on the Fig 12/13 sweeps.
"""

from repro.lazy.capture import CapturedGraph, capture
from repro.lazy.graph import LazyBuffer, LazyOp, count_dispatch_ops
from repro.lazy.runtime import (
    NumpyRuntime,
    Runtime,
    get_active_runtime,
    set_active_runtime,
    use_runtime,
)
from repro.lazy.schedule import (
    IndexLeakingScheduler,
    Kernel,
    Schedule,
    Scheduler,
)

__all__ = [
    "CapturedGraph",
    "capture",
    "LazyBuffer",
    "LazyOp",
    "count_dispatch_ops",
    "NumpyRuntime",
    "Runtime",
    "get_active_runtime",
    "set_active_runtime",
    "use_runtime",
    "IndexLeakingScheduler",
    "Kernel",
    "Schedule",
    "Scheduler",
]
