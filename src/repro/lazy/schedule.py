"""The scheduler: fuse a recorded lazy graph into an ordered kernel list.

Second layer of the record/fuse/realize pipeline. The scheduler walks a
:class:`~repro.lazy.graph.LazyBuffer` graph once and emits a
:class:`Schedule` — an ordered list of :class:`Kernel` objects a runtime
executes. Three rules:

* **movement ops are free** — reshape/transpose/broadcast never become
  kernels; they are folded into input bindings as numpy views;
* **elementwise chains fuse** — maximal connected groups of elementwise
  ops (the ``matmul -> +bias -> mask -> mul`` ReLU epilogue of every DHE
  decoder layer) collapse into one kernel;
* **contractions and reductions anchor kernels** — matmul/sum/max each
  get their own kernel (numpy's BLAS is the "hardware" they run on).

The schedule also carries the *trace plan*: the (op, region, address)
events a runtime reports to a :class:`~repro.oblivious.trace.MemoryTracer`
when executing. For the honest :class:`Scheduler` this plan is computed
here, at compile time, from the graph structure alone — before any input
value exists — so the launch trace *cannot* depend on the secrets, by
construction. :class:`IndexLeakingScheduler` deliberately breaks that
property and is kept in-tree as the negative control the leakage audit
must catch.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lazy.graph import (
    CONTRACTION_OPS,
    ELEMENTWISE_OPS,
    MOVEMENT_OPS,
    REDUCE_OPS,
    LazyBuffer,
)
from repro.oblivious.trace import READ, AccessEvent

#: region prefix for kernel-launch trace events
TRACE_REGION_PREFIX = "lazy"


@dataclass
class Kernel:
    """One executable unit: a fused group or a single heavy op."""

    index: int
    kind: str                      # "fused-elementwise" | "matmul" | "reduce"
    nodes: List[LazyBuffer]        # members in execution order; last = output

    @property
    def output(self) -> LazyBuffer:
        return self.nodes[-1]

    @property
    def fused_ops(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        ops = "+".join(node.op.op for node in self.nodes)
        return f"[{self.index}] {self.kind}({ops}) -> {self.output.shape}"


@dataclass
class Schedule:
    """The compiled plan: kernels in order plus the static trace plan."""

    name: str
    output: LazyBuffer
    inputs: Tuple[LazyBuffer, ...]
    kernels: List[Kernel]
    num_ops: int                   # recorded ops == eager dispatch count
    trace_events: List[AccessEvent] = field(default_factory=list)
    #: set only by leaky schedulers: (kernel, kernel inputs) -> address.
    #: ``None`` means the static ``trace_events`` plan is authoritative.
    dynamic_trace: Optional[Callable[[Kernel, Sequence[np.ndarray]], int]] = None

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def dispatch_ratio(self) -> float:
        """Eager ops per kernel launch — the fusion win the bench reports."""
        return self.num_ops / max(1, self.num_kernels)

    def describe(self) -> str:
        lines = [f"schedule {self.name!r}: {self.num_ops} ops -> "
                 f"{self.num_kernels} kernels"]
        lines += ["  " + kernel.describe() for kernel in self.kernels]
        return "\n".join(lines)


class Scheduler:
    """The honest fusing scheduler (compile-time trace plan)."""

    name = "fusing"

    def compile(self, output: LazyBuffer,
                inputs: Sequence[LazyBuffer] = (),
                name: str = "graph") -> Schedule:
        order = output.toposort()
        for placeholder in inputs:
            if not placeholder.is_placeholder:
                raise ValueError("schedule inputs must be placeholders")
        reachable = {id(node) for node in order}
        for placeholder in inputs:
            if id(placeholder) not in reachable:
                raise ValueError(
                    f"input {placeholder!r} is not part of the graph")

        kernels: List[Kernel] = []
        kernel_of: Dict[int, int] = {}   # node id -> kernel index (-1: free)
        num_ops = 0

        for node in order:
            if node.op is None:
                kernel_of[id(node)] = -1
                continue
            num_ops += 1
            opname = node.op.op
            if opname in MOVEMENT_OPS:
                # Views ride on whatever kernel computes their source.
                kernel_of[id(node)] = kernel_of[id(node.op.srcs[0])]
                continue
            src_kernels = [kernel_of[id(src)] for src in node.op.srcs]
            target = -1
            if opname in ELEMENTWISE_OPS:
                # Merge into the latest elementwise group among our sources,
                # provided every other dependency is computed no later.
                candidates = [
                    k for src, k in zip(node.op.srcs, src_kernels)
                    if k >= 0 and kernels[k].kind == "fused-elementwise"]
                if candidates:
                    best = max(candidates)
                    if all(k <= best for k in src_kernels):
                        target = best
            if target >= 0:
                kernels[target].nodes.append(node)
                kernel_of[id(node)] = target
                continue
            if opname in CONTRACTION_OPS:
                kind = "matmul"
            elif opname in REDUCE_OPS:
                kind = "reduce"
            elif opname in ELEMENTWISE_OPS:
                kind = "fused-elementwise"
            else:
                raise ValueError(f"unschedulable op {opname!r}")
            kernel = Kernel(index=len(kernels), kind=kind, nodes=[node])
            kernels.append(kernel)
            kernel_of[id(node)] = kernel.index

        schedule = Schedule(name=name, output=output, inputs=tuple(inputs),
                            kernels=kernels, num_ops=num_ops)
        schedule.trace_events = self.trace_plan(schedule)
        return schedule

    # ------------------------------------------------------------------
    def trace_plan(self, schedule: Schedule) -> List[AccessEvent]:
        """The kernel-launch trace, fixed at compile time.

        One READ per kernel, addressed by kernel index. Because this list
        is finalized before any input array exists, the launch sequence a
        tracer observes is a pure function of (graph structure) = (batch
        shape, table config) — never of the secret indices.
        """
        region = f"{TRACE_REGION_PREFIX}.{schedule.name}"
        return [AccessEvent(READ, region, kernel.index)
                for kernel in schedule.kernels]


class IndexLeakingScheduler(Scheduler):
    """Negative control: a scheduler whose launches depend on input values.

    It stands in for any "optimisation" that keys execution on observed
    data — a result cache keyed on the secret indices, value-conditional
    kernel dispatch, input-dependent early exit. The kernel-launch address
    it reports mixes in the first element of the kernel's first bound
    input, so two different secrets produce two different traces and the
    :class:`~repro.telemetry.audit.LeakageAuditor` flags it (exact-mode
    divergence). Kept in-tree so the audit gate is caught-by-construction:
    the bench *requires* this scheduler to be flagged.
    """

    name = "index-leaking"

    def compile(self, output: LazyBuffer,
                inputs: Sequence[LazyBuffer] = (),
                name: str = "graph") -> Schedule:
        schedule = super().compile(output, inputs, name=name)

        def leak(kernel: Kernel, bound_inputs: Sequence[np.ndarray]) -> int:
            salt = 0
            for array in bound_inputs:
                if array.size:
                    salt = zlib.crc32(np.ascontiguousarray(array).tobytes()) & 0xFFFF
                    break
            return kernel.index + salt

        schedule.dynamic_trace = leak
        return schedule
