"""Embedding tables protected by tree ORAM (§IV-A2).

A per-table ORAM instance holds the trained rows; each lookup is one ORAM
access (inherently sequential across a batch — the paper's §V-A1 notes the
internal structures must update between accesses, which is why ORAM scales
poorly with batch size in Fig 12).

These generators are inference-only: training uses the table/DHE
representation, which is then loaded into the ORAM (the paper trains DHE
and materialises tables; see Algorithm 2).
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from repro.costmodel.latency import oram_latency
from repro.costmodel.memory import tree_oram_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.tensor import Tensor
from repro.oblivious.trace import MemoryTracer
from repro.oram.circuit_oram import CircuitORAM
from repro.oram.controller import OramController
from repro.oram.path_oram import PathORAM
from repro.oram.ring_oram import RingORAM
from repro.utils.rng import SeedLike


class _OramEmbeddingBase(EmbeddingGenerator):
    """Shared machinery for the Path/Circuit ORAM embedding generators."""

    is_oblivious = True
    oram_class: Type[OramController] = OramController
    scheme: str = "abstract"

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 weight: Optional[np.ndarray] = None,
                 rng: SeedLike = None,
                 tracer: Optional[MemoryTracer] = None,
                 **oram_kwargs) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if weight is None:
            weight = np.zeros((num_embeddings, embedding_dim))
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != (num_embeddings, embedding_dim):
            raise ValueError(
                f"weight shape {weight.shape} != ({num_embeddings}, {embedding_dim})")
        self.oram = self.oram_class(num_embeddings, embedding_dim,
                                    initial_payloads=weight, rng=rng,
                                    tracer=tracer, **oram_kwargs)

    def forward(self, indices) -> Tensor:
        indices = self._check_indices(indices)
        flat = indices.reshape(-1)
        rows = np.stack([self.oram.read(int(index)) for index in flat]) \
            if flat.size else np.zeros((0, self.embedding_dim))
        return Tensor(rows.reshape(*indices.shape, self.embedding_dim))

    def load_weights(self, weight: np.ndarray) -> None:
        """Refresh all rows (e.g. after retraining the table offline)."""
        self.oram.load_blocks(np.asarray(weight, dtype=np.float64))

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        return oram_latency(self.scheme, self.num_embeddings,
                            self.embedding_dim, batch, threads, platform)

    def footprint_bytes(self) -> int:
        return tree_oram_bytes(self.num_embeddings, self.embedding_dim,
                               scheme=self.scheme)


class PathOramEmbedding(_OramEmbeddingBase):
    """Embedding table inside a Path ORAM."""

    technique = "path-oram"
    oram_class = PathORAM
    scheme = "path"


class CircuitOramEmbedding(_OramEmbeddingBase):
    """Embedding table inside a Circuit ORAM (the paper's best ORAM baseline)."""

    technique = "circuit-oram"
    oram_class = CircuitORAM
    scheme = "circuit"


class RingOramEmbedding(_OramEmbeddingBase):
    """Embedding table inside a Ring ORAM (bandwidth-optimised extension)."""

    technique = "ring-oram"
    oram_class = RingORAM
    scheme = "ring"
