"""Hybrid embedding generation: dual representation + runtime selection.

Algorithm 2's model preparation trains every sparse feature as a DHE, then
materialises tables from the trained DHEs. At inference (Algorithm 3), each
feature uses linear scan or DHE depending only on its table size and the
execution configuration — never on the input — so the hybrid inherits the
constituents' obliviousness.
"""

from __future__ import annotations

from typing import Optional


from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.embedding.dhe import DHEEmbedding
from repro.embedding.scan import LinearScanEmbedding
from repro.nn.tensor import Tensor
from repro.telemetry.runtime import get_registry

TECHNIQUE_SCAN = "scan"
TECHNIQUE_DHE = "dhe"


class HybridEmbedding(EmbeddingGenerator):
    """One sparse feature holding both a DHE and (lazily) its scan table.

    ``select(technique)`` flips the active representation; the table is
    materialised from the trained DHE on first use so both representations
    encode the *same* function (no retraining, no accuracy change).
    """

    is_oblivious = True

    def __init__(self, dhe: DHEEmbedding) -> None:
        super().__init__(dhe.num_embeddings, dhe.embedding_dim)
        self.dhe = dhe
        self._scan: Optional[LinearScanEmbedding] = None
        self._active = TECHNIQUE_DHE

    @property
    def technique(self) -> str:  # type: ignore[override]
        return f"hybrid/{self._active}"

    @property
    def active(self) -> str:
        return self._active

    # ------------------------------------------------------------------
    def select(self, technique: str) -> "HybridEmbedding":
        """Choose the active representation (Algorithm 3's online step)."""
        if technique not in (TECHNIQUE_SCAN, TECHNIQUE_DHE):
            raise ValueError(
                f"technique must be '{TECHNIQUE_SCAN}' or '{TECHNIQUE_DHE}', "
                f"got {technique!r}")
        if technique == TECHNIQUE_SCAN:
            self._ensure_table()
        self._active = technique
        get_registry().counter(
            f"embedding.hybrid.select_{technique}_total").inc()
        return self

    def _ensure_table(self) -> LinearScanEmbedding:
        if self._scan is None:
            registry = get_registry()
            with registry.span("embedding.hybrid.materialize_table",
                               rows=self.num_embeddings):
                weight = self.dhe.materialize_table()
            registry.counter("embedding.hybrid.tables_materialized_total").inc()
            self._scan = LinearScanEmbedding(self.num_embeddings,
                                             self.embedding_dim, weight=weight)
        return self._scan

    def degrade(self, cause: str = "fault") -> "HybridEmbedding":
        """Step down to the scan representation under fault pressure.

        Both representations are oblivious, so degradation trades latency
        for robustness without reopening the access-pattern channel — the
        hybrid has no raw-lookup mode to fall into. Recorded under
        ``resilience.degradations_total`` like every ladder transition.
        """
        if self._active == TECHNIQUE_SCAN:
            return self
        self.select(TECHNIQUE_SCAN)
        registry = get_registry()
        registry.counter("resilience.degradations_total").inc()
        registry.counter(
            f"embedding.hybrid.degraded_{cause}_total").inc()
        return self

    def refresh_table(self) -> None:
        """Re-materialise the scan table after the DHE was (re)trained."""
        if self._scan is not None:
            self._scan.weight.data[...] = self.dhe.materialize_table()

    # ------------------------------------------------------------------
    def forward(self, indices) -> Tensor:
        if self._active == TECHNIQUE_SCAN:
            return self._ensure_table()(indices)
        return self.dhe(indices)

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        if self._active == TECHNIQUE_SCAN:
            return self._ensure_table().modelled_latency(batch, threads, platform)
        return self.dhe.modelled_latency(batch, threads, platform)

    def footprint_bytes(self) -> int:
        """Footprint of the *active* representation (Algorithm 2 ships the
        cheaper one per feature once the threshold is known)."""
        if self._active == TECHNIQUE_SCAN:
            return self._ensure_table().footprint_bytes()
        return self.dhe.footprint_bytes()
