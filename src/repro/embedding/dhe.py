"""Deep Hash Embedding (Algorithm 1; Kang et al., repurposed for security).

Pipeline per categorical value ``x``:

1. **Encode**: ``y_j = ((a_j * x + b_j) mod p) mod m`` for ``k`` universal
   hash functions (Carter-Wegman), with bucket size ``m = 1e6``;
2. **Scale**: map each ``y_j`` uniformly into ``[-1, 1]``;
3. **Decode**: feed the length-``k`` real vector through an FC stack to
   produce the embedding.

Security: both the hashing (vectorised arithmetic over the whole batch) and
the FC stack (dense matmuls + branchless ReLU) touch memory in a pattern
fixed by the *shapes*, never by the value of ``x`` — DHE is oblivious by
construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.costmodel.latency import DheShape, dhe_latency, dhe_varied_shape
from repro.costmodel.memory import dhe_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.layers import MLP
from repro.nn.tensor import Tensor
from repro.oblivious.trace import MemoryTracer, TracedArray
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike, new_rng

#: Algorithm 1: hash bucket size m = 1e6.
DEFAULT_BUCKETS = 1_000_000
#: A Mersenne prime comfortably above m; a_j, b_j are drawn below it.
UNIVERSAL_PRIME = (1 << 61) - 1


class UniversalHashEncoder:
    """The k-fold Carter-Wegman integer encoder of DHE's first two steps."""

    def __init__(self, k: int, num_buckets: int = DEFAULT_BUCKETS,
                 prime: int = UNIVERSAL_PRIME, rng: SeedLike = None) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if num_buckets <= 1:
            raise ValueError(f"num_buckets must exceed 1, got {num_buckets}")
        if prime <= num_buckets:
            raise ValueError("prime must exceed num_buckets")
        self.k = k
        self.num_buckets = num_buckets
        self.prime = prime
        generator = new_rng(rng)
        # a_j in [1, p), b_j in [0, p) — the classic universal family.
        self.a = generator.integers(1, prime, size=k, dtype=np.uint64)
        self.b = generator.integers(0, prime, size=k, dtype=np.uint64)

    def hash_values(self, indices: np.ndarray) -> np.ndarray:
        """Integer hash matrix of shape (batch, k)."""
        indices = np.asarray(indices, dtype=np.uint64).reshape(-1, 1)
        # Python-object arithmetic avoids uint64 overflow in a*x+b mod p;
        # arrays stay index-shape-only, so the pattern leaks nothing.
        a = self.a.astype(object)
        b = self.b.astype(object)
        hashed = (indices.astype(object) * a + b) % self.prime % self.num_buckets
        return hashed.astype(np.int64)

    def encode(self, indices: np.ndarray) -> np.ndarray:
        """Real-valued encoding in [-1, 1], shape (batch, k) (Algorithm 1 step 2)."""
        hashed = self.hash_values(indices)
        return hashed.astype(np.float64) / (self.num_buckets - 1) * 2.0 - 1.0


class DHEEmbedding(EmbeddingGenerator):
    """Computation-based embedding generator; trainable end-to-end."""

    technique = "dhe"
    is_oblivious = True

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 shape: Optional[DheShape] = None,
                 k: int = 1024, fc_sizes: Sequence[int] = (512, 256),
                 num_buckets: int = DEFAULT_BUCKETS,
                 rng: SeedLike = None) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if shape is None:
            shape = DheShape(k=k, fc_sizes=tuple(fc_sizes),
                             out_dim=embedding_dim)
        if shape.out_dim != embedding_dim:
            raise ValueError(
                f"shape.out_dim {shape.out_dim} != embedding_dim {embedding_dim}")
        self.shape = shape
        generator = new_rng(rng)
        self.encoder = UniversalHashEncoder(shape.k, num_buckets=num_buckets,
                                            rng=generator)
        self.decoder = MLP([shape.k, *shape.fc_sizes, embedding_dim],
                           activation="relu", rng=generator)

    @classmethod
    def varied(cls, num_embeddings: int, embedding_dim: int,
               uniform_shape: DheShape, rng: SeedLike = None,
               **kwargs) -> "DHEEmbedding":
        """Build the Varied-sized DHE for this table (§IV-B1)."""
        shape = dhe_varied_shape(num_embeddings, uniform_shape)
        return cls(num_embeddings, embedding_dim, shape=shape, rng=rng, **kwargs)

    # ------------------------------------------------------------------
    def forward(self, indices) -> Tensor:
        indices = self._check_indices(indices)
        registry = get_registry()
        flat = indices.reshape(-1)
        with registry.span("embedding.dhe.forward", batch=int(flat.size),
                           k=self.shape.k):
            encoded = self.encoder.encode(flat)
            decoded = self._decode(encoded)
        registry.counter("embedding.dhe.queries_total").inc(int(flat.size))
        return decoded.reshape(*indices.shape, self.embedding_dim)

    def _decode(self, encoded: np.ndarray) -> Tensor:
        """Run the FC stack: eager by default, captured under a lazy runtime.

        When a :mod:`repro.lazy` runtime is active and the module is in
        eval mode, the decoder is recorded once per (batch shape, DHE
        shape) and replayed from the runtime's graph cache — byte-identical
        to the eager stack (the trace-parity tests pin this), but with one
        fused kernel launch per layer instead of one Python dispatch per
        tensor op. Training and default (no runtime) execution stay eager.
        """
        from repro.lazy.runtime import get_active_runtime

        runtime = get_active_runtime()
        if runtime is None or self.training or encoded.size == 0:
            return self.decoder(Tensor(encoded))
        from repro.lazy.capture import capture

        key = ("dhe.decode", id(self), self.shape, encoded.shape)
        graph = runtime.captured(key, lambda: capture(
            lambda buf: self.decoder(Tensor(buf)), [encoded],
            runtime=runtime, name=f"dhe.decode.b{encoded.shape[0]}"))
        return Tensor(graph(encoded))

    def generate_traced(self, indices, tracer: MemoryTracer) -> np.ndarray:
        """DHE generation with its (shape-fixed) weight sweeps recorded.

        The hash step is pure arithmetic over registers; the decoder's dense
        matmuls read every weight row of every layer in an order fixed by
        the shapes alone. Recording those sweeps against the tracer makes
        DHE auditable by the same trace-equivalence machinery as the scan.
        """
        indices = self._check_indices(indices).reshape(-1)
        out = self.forward(indices).data
        for name, param in self.decoder.named_parameters():
            TracedArray(param.data, name=f"dhe.{name}",
                        tracer=tracer).read_all()
        return out

    def materialize_table(self, batch_size: int = 4096) -> np.ndarray:
        """Emit the full (n, dim) table of DHE outputs.

        This is Algorithm 2's offline step: trained DHEs below the hybrid
        threshold are converted to tables for linear scan at inference.
        """
        rows = np.empty((self.num_embeddings, self.embedding_dim))
        for start in range(0, self.num_embeddings, batch_size):
            stop = min(start + batch_size, self.num_embeddings)
            rows[start:stop] = self.forward(np.arange(start, stop)).data
        return rows

    # ------------------------------------------------------------------
    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        return dhe_latency(self.shape, batch, threads, platform)

    def footprint_bytes(self) -> int:
        return dhe_bytes(self.shape)
