"""Linear-scan-protected table (§IV-A1, §V-A2).

Two execution modes share the same weights:

* the *performance* mode expresses the scan as ``onehot(indices) @ table``
  (the same arithmetic the AVX-512 blend performs — every row participates
  in every query), which keeps it differentiable and fast under numpy;
* the *traced* mode executes the scalar scan against a
  :class:`~repro.oblivious.trace.TracedArray` so security tests can verify
  the full-sweep access pattern row by row.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.costmodel.latency import linear_scan_latency
from repro.costmodel.memory import table_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.lazy.runtime import get_active_runtime
from repro.oblivious.linear_scan import linear_scan_batch, linear_scan_batch_vectorized
from repro.oblivious.trace import MemoryTracer, TracedArray
from repro.telemetry.runtime import get_registry
from repro.utils.rng import SeedLike, new_rng


class LinearScanEmbedding(EmbeddingGenerator):
    """Oblivious linear scan of an embedding table; trainable."""

    technique = "scan"
    is_oblivious = True

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: SeedLike = None,
                 weight: Optional[np.ndarray] = None) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if weight is not None:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != (num_embeddings, embedding_dim):
                raise ValueError(
                    f"weight shape {weight.shape} != "
                    f"({num_embeddings}, {embedding_dim})")
            self.weight = Parameter(weight.copy())
        else:
            scale = 1.0 / math.sqrt(embedding_dim)
            self.weight = Parameter(new_rng(rng).uniform(
                -scale, scale, size=(num_embeddings, embedding_dim)))

    def forward(self, indices) -> Tensor:
        indices = self._check_indices(indices)
        registry = get_registry()
        flat = indices.reshape(-1)
        with registry.span("embedding.scan.forward", batch=int(flat.size),
                           rows=self.num_embeddings):
            if get_active_runtime() is not None and not self.training:
                # Same masked matmul, replayed from the lazy graph cache
                # (bit-identical; inference-only, so no grad graph needed).
                out = Tensor(linear_scan_batch_vectorized(
                    self.weight.data, flat))
            else:
                onehot = np.zeros((flat.size, self.num_embeddings))
                onehot[np.arange(flat.size), flat] = 1.0
                out = Tensor(onehot) @ self.weight
        registry.counter("embedding.scan.queries_total").inc(int(flat.size))
        registry.counter("embedding.scan.rows_swept_total").inc(
            int(flat.size) * self.num_embeddings)
        return out.reshape(*indices.shape, self.embedding_dim)

    def generate_traced(self, indices, tracer: MemoryTracer) -> np.ndarray:
        """Scalar oblivious scan with every access recorded."""
        indices = self._check_indices(indices).reshape(-1)
        traced = TracedArray(self.weight.data, name="scan.table", tracer=tracer)
        return linear_scan_batch(traced, indices)

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        return linear_scan_latency(self.num_embeddings, self.embedding_dim,
                                   batch, threads, platform)

    def footprint_bytes(self) -> int:
        return table_bytes(self.num_embeddings, self.embedding_dim)
