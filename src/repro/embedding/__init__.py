"""Secure embedding generation methods behind one interface (§IV)."""

from repro.embedding.base import EmbeddingGenerator
from repro.embedding.dhe import (
    DEFAULT_BUCKETS,
    UNIVERSAL_PRIME,
    DHEEmbedding,
    UniversalHashEncoder,
)
from repro.embedding.hybrid import (
    TECHNIQUE_DHE,
    TECHNIQUE_SCAN,
    HybridEmbedding,
)
from repro.embedding.oram_embedding import (
    CircuitOramEmbedding,
    PathOramEmbedding,
    RingOramEmbedding,
)
from repro.embedding.scan import LinearScanEmbedding
from repro.embedding.table import TableEmbedding
from repro.embedding.tensor_train import (
    TTEmbedding,
    balanced_factors,
    exact_factors,
)

__all__ = [
    "TTEmbedding",
    "balanced_factors",
    "exact_factors",
    "EmbeddingGenerator",
    "DEFAULT_BUCKETS",
    "UNIVERSAL_PRIME",
    "DHEEmbedding",
    "UniversalHashEncoder",
    "TECHNIQUE_DHE",
    "TECHNIQUE_SCAN",
    "HybridEmbedding",
    "CircuitOramEmbedding",
    "PathOramEmbedding",
    "RingOramEmbedding",
    "LinearScanEmbedding",
    "TableEmbedding",
]
