"""Tensor-Train (TT) compressed embeddings — the insecure comparator (§VII).

TT-Rec (Yin et al.) factorises an (n x d) table into three small cores; a
lookup decomposes the index into per-core sub-indices and multiplies the
gathered slices. The paper cites it as a *memory* optimization that is
**not** side-channel secure: the sub-index gathers still reveal the index.
We implement it so the claim is checkable (its traced lookup leaks) and so
the DHE-vs-TT footprint/latency trade-off can be benchmarked.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.oblivious.trace import READ, MemoryTracer
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


def balanced_factors(value: int, parts: int = 3) -> Tuple[int, ...]:
    """Factors ``f_1..f_parts`` with product >= value, as balanced as possible.

    Index factorisation may over-cover (product > value); unused slots are
    simply never addressed — standard practice in TT embedding layers.
    """
    check_positive("value", value)
    check_positive("parts", parts)
    root = value ** (1.0 / parts)
    factors = [max(1, int(math.floor(root)))] * parts
    # Grow factors round-robin until the product covers the value.
    position = 0
    while math.prod(factors) < value:
        factors[position % parts] += 1
        position += 1
    return tuple(factors)


def exact_factors(value: int, parts: int = 3) -> Tuple[int, ...]:
    """Factors with an exact product (for the embedding dimension)."""
    check_positive("value", value)
    factors: List[int] = []
    remaining = value
    for index in range(parts - 1):
        target = round(remaining ** (1.0 / (parts - index)))
        divisor = 1
        # nearest divisor of `remaining` to the balanced target
        for candidate in range(1, remaining + 1):
            if remaining % candidate == 0 and \
                    abs(candidate - target) < abs(divisor - target):
                divisor = candidate
        factors.append(divisor)
        remaining //= divisor
    factors.append(remaining)
    return tuple(factors)


class TTEmbedding(EmbeddingGenerator):
    """Three-core tensor-train embedding; compressed but NOT oblivious."""

    technique = "tt"
    is_oblivious = False

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rank: int = 8, rng: SeedLike = None) -> None:
        super().__init__(num_embeddings, embedding_dim)
        check_positive("rank", rank)
        self.rank = rank
        self.index_factors = balanced_factors(num_embeddings, 3)
        self.dim_factors = exact_factors(embedding_dim, 3)
        generator = new_rng(rng)
        n1, n2, n3 = self.index_factors
        d1, d2, d3 = self.dim_factors
        scale = (1.0 / math.sqrt(embedding_dim)) ** (1.0 / 3.0)
        # Cores stored row-major by sub-index so gathers are row reads.
        self.core1 = Parameter(generator.normal(0, scale, size=(n1, d1 * rank)))
        self.core2 = Parameter(generator.normal(0, scale,
                                                size=(n2, rank * d2 * rank)))
        self.core3 = Parameter(generator.normal(0, scale, size=(n3, rank * d3)))

    # ------------------------------------------------------------------
    def split_index(self, indices: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Mixed-radix decomposition of flat indices into core sub-indices."""
        n1, n2, n3 = self.index_factors
        i3 = indices % n3
        i2 = (indices // n3) % n2
        i1 = indices // (n2 * n3)
        return i1, i2, i3

    def forward(self, indices) -> Tensor:
        indices = self._check_indices(indices)
        flat = indices.reshape(-1)
        batch = flat.size
        i1, i2, i3 = self.split_index(flat)
        d1, d2, d3 = self.dim_factors
        r = self.rank
        g1 = self.core1.gather_rows(i1).reshape(batch, d1, r)
        g2 = self.core2.gather_rows(i2).reshape(batch, r, d2 * r)
        g3 = self.core3.gather_rows(i3).reshape(batch, r, d3)
        left = (g1 @ g2).reshape(batch, d1 * d2, r)
        full = (left @ g3).reshape(batch, d1 * d2 * d3)
        return full.reshape(*indices.shape, self.embedding_dim)

    def generate_traced(self, indices, tracer: MemoryTracer) -> np.ndarray:
        """Lookup with the per-core row gathers recorded — shows the leak."""
        indices = self._check_indices(indices).reshape(-1)
        for index in indices:
            i1, i2, i3 = self.split_index(np.asarray(index))
            tracer.record(READ, "tt.core1", int(i1))
            tracer.record(READ, "tt.core2", int(i2))
            tracer.record(READ, "tt.core3", int(i3))
        return self.forward(indices).data

    # ------------------------------------------------------------------
    def parameter_count(self) -> int:
        return int(self.core1.size + self.core2.size + self.core3.size)

    def footprint_bytes(self) -> int:
        return self.parameter_count() * 4

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        d1, d2, d3 = self.dim_factors
        r = self.rank
        flops = batch * 2 * (d1 * r * d2 * r + d1 * d2 * r * d3)
        return flops / platform.flop_rate(batch, threads) + 2e-6
