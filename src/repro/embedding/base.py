"""The common interface every embedding-generation method implements.

The paper's taxonomy (Fig 2) distinguishes storage-based methods (table
lookup, linear scan, ORAM-protected table) from the computation-based DHE.
All of them are exposed here as :class:`EmbeddingGenerator` modules with:

* ``forward(indices) -> Tensor`` — generate embeddings for integer indices;
* ``is_oblivious`` — whether the access pattern is index-independent;
* ``modelled_latency(batch, threads)`` — the calibrated analytic latency
  used by the profiling/threshold machinery and the figure benchmarks;
* ``footprint_bytes()`` — the representation's memory footprint.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class EmbeddingGenerator(Module):
    """Base class for all embedding generation methods."""

    #: short technique identifier used by the profiler and reports
    technique: str = "abstract"
    #: whether the memory access pattern is independent of the index
    is_oblivious: bool = False

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__()
        if num_embeddings <= 0:
            raise ValueError(f"num_embeddings must be positive, got {num_embeddings}")
        if embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {embedding_dim}")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    # ------------------------------------------------------------------
    def forward(self, indices) -> Tensor:
        raise NotImplementedError

    def generate(self, indices) -> np.ndarray:
        """Inference-only convenience: embeddings as a plain array."""
        return self.forward(np.asarray(indices)).data

    def batched_forward(self, indices,
                        batch_size: Optional[int] = None) -> np.ndarray:
        """Inference in chunks of ``batch_size`` along the leading axis.

        The seam measured execution backends drive: one call is one serving
        batch. ``batch_size=None`` runs the whole request in a single chunk.
        """
        indices = np.asarray(indices)
        if batch_size is None:
            return self.generate(indices)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        chunks = [self.generate(indices[first:first + batch_size])
                  for first in range(0, indices.shape[0], batch_size)]
        return np.concatenate(chunks, axis=0) if chunks else np.empty(
            (0, self.embedding_dim))

    def forward_pooled(self, indices, mode: str = "sum",
                       lengths=None) -> Tensor:
        """Multi-hot lookup with pooling: (batch, bag) indices -> (batch, dim).

        Real DLRM sparse features are bags of ids (e.g. recent purchases)
        reduced by sum/mean pooling. The pooling itself is a dense reduction
        with no data-dependent access, so a generator's obliviousness is
        inherited; the *bag length* is visible, which the threat model does
        not hide (§III: the number of accesses is public).

        ``lengths`` gives the true per-row bag length for padded bags: rows
        are reduced over their first ``lengths[i]`` slots only, and mean
        pooling divides by the true length rather than the padded width.
        Padding slots must still hold valid indices (the pads are masked
        after lookup, keeping the access pattern length-independent).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2:
            raise ValueError(
                f"pooled lookup expects (batch, bag) indices, got "
                f"{indices.shape}")
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        vectors = self.forward(indices)          # (batch, bag, dim)
        if lengths is None:
            pooled = vectors.sum(axis=1)
            if mode == "mean":
                pooled = pooled * (1.0 / indices.shape[1])
            return pooled
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != (indices.shape[0],):
            raise ValueError(
                f"lengths must have shape ({indices.shape[0]},), got "
                f"{lengths.shape}")
        if lengths.size and (lengths.min() < 1
                             or lengths.max() > indices.shape[1]):
            raise ValueError(
                f"lengths must be in [1, {indices.shape[1]}] for bags of "
                f"width {indices.shape[1]}")
        mask = (np.arange(indices.shape[1]) < lengths[:, None])
        pooled = (vectors * mask[:, :, None].astype(np.float64)).sum(axis=1)
        if mode == "mean":
            pooled = pooled * (1.0 / lengths.astype(np.float64))[:, None]
        return pooled

    def generate_pooled(self, indices, mode: str = "sum",
                        lengths=None) -> np.ndarray:
        return self.forward_pooled(indices, mode=mode, lengths=lengths).data

    # ------------------------------------------------------------------
    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        """Calibrated analytic latency (seconds) for one batch."""
        raise NotImplementedError

    def footprint_bytes(self) -> int:
        """Memory footprint of this representation."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        invalid = (indices < 0) | (indices >= self.num_embeddings)
        if indices.size and invalid.any():
            position = np.unravel_index(int(np.argmax(invalid)),
                                        indices.shape)
            raise IndexError(
                f"index {int(indices[position])} at position "
                f"{tuple(int(p) for p in position)} is out of range for "
                f"table of {self.num_embeddings} rows")
        return indices

    def __repr__(self) -> str:
        return (f"{self.__class__.__name__}(n={self.num_embeddings}, "
                f"dim={self.embedding_dim})")
