"""Non-secure table lookup — the baseline whose index leaks (Fig 2 (1))."""

from __future__ import annotations


import numpy as np

from repro.costmodel.latency import lookup_latency
from repro.costmodel.memory import table_bytes
from repro.costmodel.platform import DEFAULT_PLATFORM, PlatformModel
from repro.embedding.base import EmbeddingGenerator
from repro.nn.layers import EmbeddingTable
from repro.nn.tensor import Tensor
from repro.oblivious.trace import MemoryTracer, TracedArray
from repro.utils.rng import SeedLike


class TableEmbedding(EmbeddingGenerator):
    """Plain (vulnerable) embedding-table lookup; trainable."""

    technique = "lookup"
    is_oblivious = False

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: SeedLike = None) -> None:
        super().__init__(num_embeddings, embedding_dim)
        self.table = EmbeddingTable(num_embeddings, embedding_dim, rng=rng)

    @property
    def weight(self):
        return self.table.weight

    def forward(self, indices) -> Tensor:
        return self.table(self._check_indices(indices))

    def generate_traced(self, indices, tracer: MemoryTracer) -> np.ndarray:
        """Lookup with the access pattern recorded — shows the leak."""
        indices = self._check_indices(indices).reshape(-1)
        traced = TracedArray(self.weight.data, name="table", tracer=tracer)
        return np.stack([traced.read(int(index)) for index in indices])

    def modelled_latency(self, batch: int, threads: int = 1,
                         platform: PlatformModel = DEFAULT_PLATFORM) -> float:
        return lookup_latency(self.num_embeddings, self.embedding_dim,
                              batch, threads, platform)

    def footprint_bytes(self) -> int:
        return table_bytes(self.num_embeddings, self.embedding_dim)
