"""Model memory-footprint accounting (Tables VI and VIII, §VI-D3).

Computes whole-model footprints for DLRM and the GPT-2-style LLM under each
embedding representation: raw tables, tree ORAM, DHE Uniform/Varied, and the
hybrid (scan tables below the threshold, DHE above).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.costmodel.latency import DheShape, dhe_varied_shape
from repro.costmodel.memory import dhe_bytes, table_bytes, tree_oram_bytes
from repro.utils.validation import check_positive

MB = 1024 * 1024


@dataclass(frozen=True)
class FootprintReport:
    """Per-representation footprint of one model, in bytes."""

    table: int
    tree_oram: int
    dhe_uniform: int
    dhe_varied: int
    hybrid_uniform: int
    hybrid_varied: int

    def as_mb(self) -> Dict[str, float]:
        return {name: value / MB for name, value in self.__dict__.items()}

    def relative_to_table(self) -> Dict[str, float]:
        return {name: value / self.table for name, value in self.__dict__.items()}


def dlrm_embedding_footprints(table_sizes: Sequence[int], dim: int,
                              uniform_shape: DheShape,
                              hybrid_threshold: int,
                              dense_bytes: int = 0,
                              scheme: str = "circuit") -> FootprintReport:
    """Footprints of a DLRM's embedding layers (+ shared dense part).

    ``hybrid_threshold``: tables at or below this size keep the raw table
    (linear scan); larger tables use DHE. The hybrid counts the *smaller* of
    the two representations per feature, as in Algorithm 2's offline step
    (DHE-trained features below threshold are materialised as tables).
    """
    check_positive("dim", dim)
    check_positive("hybrid_threshold", hybrid_threshold)
    total_table = total_oram = total_uniform = total_varied = 0
    total_hybrid_u = total_hybrid_v = 0
    for size in table_sizes:
        raw = table_bytes(size, dim)
        uniform = dhe_bytes(uniform_shape)
        varied = dhe_bytes(dhe_varied_shape(size, uniform_shape))
        total_table += raw
        total_oram += tree_oram_bytes(size, dim, scheme=scheme)
        total_uniform += uniform
        total_varied += varied
        if size <= hybrid_threshold:
            total_hybrid_u += raw
            total_hybrid_v += raw
        else:
            total_hybrid_u += uniform
            total_hybrid_v += varied
    return FootprintReport(
        table=total_table + dense_bytes,
        tree_oram=total_oram + dense_bytes,
        dhe_uniform=total_uniform + dense_bytes,
        dhe_varied=total_varied + dense_bytes,
        hybrid_uniform=total_hybrid_u + dense_bytes,
        hybrid_varied=total_hybrid_v + dense_bytes,
    )


@dataclass(frozen=True)
class LlmFootprint:
    """GPT-2-style model footprint under each token-embedding scheme."""

    base_model: int        # everything except the token-embedding table
    table: int
    oram_table: int
    dhe: int

    def total(self, scheme: str) -> int:
        extras = {"table": self.table, "oram": self.oram_table,
                  "dhe": self.table + self.dhe, "scan": self.table}
        if scheme not in extras:
            raise ValueError(f"unknown scheme {scheme!r}")
        # DHE keeps the tied output head's table for logits (§II-A weight
        # tying), so its footprint is base + table + DHE stack.
        return self.base_model + extras[scheme]


def gpt2_footprint(vocab_size: int, embed_dim: int, num_layers: int,
                   context_length: int, dhe_shape: DheShape,
                   element_bytes: int = 4,
                   scheme_for_oram: str = "circuit") -> LlmFootprint:
    """Footprint accounting for a GPT-2-architecture model.

    Per block: fused QKV (d x 3d), output projection (d x d), two MLP mats
    (d x 4d, 4d x d), biases, and two LayerNorms; plus learned positional
    embeddings and the final LayerNorm. The token table is counted once
    (tied with the output head).
    """
    check_positive("vocab_size", vocab_size)
    check_positive("embed_dim", embed_dim)
    d = embed_dim
    per_block = (d * 3 * d + 3 * d) + (d * d + d) + (d * 4 * d + 4 * d) \
        + (4 * d * d + d) + 4 * d
    base = num_layers * per_block + context_length * d + 2 * d
    token_table = vocab_size * d
    return LlmFootprint(
        base_model=base * element_bytes,
        table=token_table * element_bytes,
        oram_table=tree_oram_bytes(vocab_size, d, scheme=scheme_for_oram,
                                   element_bytes=element_bytes),
        dhe=dhe_bytes(dhe_shape, element_bytes),
    )
