"""Classification metrics for the DLRM experiments."""

from __future__ import annotations

import numpy as np


def binary_accuracy(labels: np.ndarray, scores: np.ndarray,
                    threshold: float = 0.0) -> float:
    """Fraction of correct {0,1} predictions from raw logits.

    ``threshold`` is in logit space (0.0 corresponds to probability 0.5),
    matching the paper's reported DLRM "accuracy" metric.
    """
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    if labels.size == 0:
        raise ValueError("binary_accuracy of empty arrays")
    predictions = (scores > threshold).astype(labels.dtype)
    return float((predictions == labels).mean())


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity."""
    labels = np.asarray(labels).reshape(-1)
    scores = np.asarray(scores).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {scores.shape}")
    positives = int(labels.sum())
    negatives = labels.size - positives
    if positives == 0 or negatives == 0:
        raise ValueError("roc_auc needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    ranks[order] = np.arange(1, labels.size + 1)
    # Average ties.
    sorted_scores = scores[order]
    start = 0
    for end in range(1, labels.size + 1):
        if end == labels.size or sorted_scores[end] != sorted_scores[start]:
            mean_rank = 0.5 * (start + 1 + end)
            ranks[order[start:end]] = mean_rank
            start = end
    rank_sum = ranks[labels == 1].sum()
    return float((rank_sum - positives * (positives + 1) / 2)
                 / (positives * negatives))


def log_loss(labels: np.ndarray, logits: np.ndarray) -> float:
    """Mean binary cross-entropy from raw logits (numerically stable)."""
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    if labels.shape != logits.shape:
        raise ValueError(f"shape mismatch: {labels.shape} vs {logits.shape}")
    losses = np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    return float(losses.mean())
