"""Language-model quality metrics (perplexity, §VI-D1)."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def perplexity_from_loss(mean_nll: float) -> float:
    """Perplexity = exp(mean negative log-likelihood in nats)."""
    if mean_nll < 0:
        raise ValueError(f"mean NLL must be non-negative, got {mean_nll}")
    return math.exp(mean_nll)


def sequence_perplexity(log_probs: Sequence[float]) -> float:
    """Perplexity of one sequence from per-token natural log-probabilities."""
    log_probs = np.asarray(log_probs, dtype=np.float64)
    if log_probs.size == 0:
        raise ValueError("sequence_perplexity of empty sequence")
    if (log_probs > 0).any():
        raise ValueError("log probabilities must be <= 0")
    return float(np.exp(-log_probs.mean()))


def bits_per_token(mean_nll: float) -> float:
    """Cross-entropy in bits/token (handy against the corpus entropy rate)."""
    return mean_nll / math.log(2.0)
