"""Evaluation metrics: accuracy/AUC, perplexity, memory footprints."""

from repro.metrics.accuracy import binary_accuracy, log_loss, roc_auc
from repro.metrics.footprint import (
    MB,
    FootprintReport,
    LlmFootprint,
    dlrm_embedding_footprints,
    gpt2_footprint,
)
from repro.metrics.perplexity import (
    bits_per_token,
    perplexity_from_loss,
    sequence_perplexity,
)

__all__ = [
    "binary_accuracy",
    "log_loss",
    "roc_auc",
    "MB",
    "FootprintReport",
    "LlmFootprint",
    "dlrm_embedding_footprints",
    "gpt2_footprint",
    "bits_per_token",
    "perplexity_from_loss",
    "sequence_perplexity",
]
