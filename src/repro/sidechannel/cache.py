"""A set-associative last-level-cache model with LRU replacement.

Granularity matches the paper's attack (§III-A2): the attacker observes
cache-set contention at cache-line granularity, and every embedding-table
row spans at least one line, so line-level modelling suffices to recover
lookup indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.utils.validation import check_positive, check_power_of_two


@dataclass
class CacheConfig:
    """Geometry and timing of the modelled cache."""

    num_sets: int = 1024
    ways: int = 12
    line_size: int = 64
    hit_latency: float = 40.0     # cycles: LLC hit
    miss_latency: float = 200.0   # cycles: DRAM access

    def __post_init__(self) -> None:
        check_power_of_two("num_sets", self.num_sets)
        check_positive("ways", self.ways)
        check_power_of_two("line_size", self.line_size)
        if self.miss_latency <= self.hit_latency:
            raise ValueError("miss_latency must exceed hit_latency")


class SetAssociativeCache:
    """LRU set-associative cache shared by victim and attacker."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        # Per-set list of resident line tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self.config.num_sets)]
        self.accesses = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple:
        line = address // self.config.line_size
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def set_index_of(self, address: int) -> int:
        """Cache set an address maps to (what the attacker computes)."""
        return self._locate(address)[0]

    def access(self, address: int) -> float:
        """Access one byte address; returns the observed latency in cycles."""
        set_index, tag = self._locate(address)
        resident = self._sets[set_index]
        self.accesses += 1
        if tag in resident:
            resident.remove(tag)
            resident.append(tag)
            return self.config.hit_latency
        self.misses += 1
        resident.append(tag)
        if len(resident) > self.config.ways:
            resident.pop(0)  # evict LRU
        return self.config.miss_latency

    def access_range(self, address: int, num_bytes: int) -> float:
        """Access ``num_bytes`` starting at ``address``; total latency."""
        check_positive("num_bytes", num_bytes)
        total = 0.0
        first_line = address // self.config.line_size
        last_line = (address + num_bytes - 1) // self.config.line_size
        for line in range(first_line, last_line + 1):
            total += self.access(line * self.config.line_size)
        return total

    def flush(self) -> None:
        """Empty the cache (used between attack trials)."""
        for resident in self._sets:
            resident.clear()
