"""PRIME+PROBE attacker recovering embedding lookup indices (Fig 3).

Phase (i): build an eviction set per candidate index — the paper assumes the
table's physical address is known (a malicious OS can learn it), so the
attacker directly computes which cache set each row maps to and allocates
its own ``ways`` conflicting lines there.

Phase (ii): prime the monitored sets, let the victim run one lookup, then
probe — re-access the eviction set and time it. The set whose probe is slow
lost a line to the victim, revealing the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


from repro.sidechannel.cache import SetAssociativeCache
from repro.sidechannel.victim import EmbeddingLookupVictim
from repro.utils.rng import SeedLike, new_rng


@dataclass
class AttackResult:
    """Outcome of one PRIME+PROBE trial over the monitored indices."""

    probe_latencies: Dict[int, float]   # candidate index -> mean probe cycles
    recovered_index: int
    true_index: int

    @property
    def success(self) -> bool:
        return self.recovered_index == self.true_index


class PrimeProbeAttacker:
    """Cross-core LLC attacker monitoring one cache set per table index."""

    #: attacker's own memory region, far above the victim table
    ATTACKER_BASE = 0x4000_0000

    def __init__(self, cache: SetAssociativeCache,
                 victim: EmbeddingLookupVictim,
                 monitored_indices: Sequence[int],
                 noise_cycles: float = 0.0,
                 rng: SeedLike = None) -> None:
        self.cache = cache
        self.victim = victim
        self.monitored_indices = list(monitored_indices)
        if not self.monitored_indices:
            raise ValueError("attacker must monitor at least one index")
        self.noise_cycles = noise_cycles
        self.rng = new_rng(rng)
        self._eviction_sets = {
            index: self._build_eviction_set(index)
            for index in self.monitored_indices
        }

    # ------------------------------------------------------------------
    # Phase (i): eviction-set construction
    # ------------------------------------------------------------------
    def _build_eviction_set(self, index: int) -> List[int]:
        """Addresses (one per way) congruent to the first line of row ``index``."""
        target = self.victim.row_address(index)
        target_set = self.cache.set_index_of(target)
        config = self.cache.config
        stride = config.num_sets * config.line_size  # same-set stride
        base = self.ATTACKER_BASE + target_set * config.line_size
        return [base + way * stride for way in range(config.ways)]

    # ------------------------------------------------------------------
    # Phase (ii): prime, victim, probe
    # ------------------------------------------------------------------
    def prime(self) -> None:
        for addresses in self._eviction_sets.values():
            for address in addresses:
                self.cache.access(address)

    def probe(self) -> Dict[int, float]:
        """Re-access each eviction set; return mean per-line latency."""
        latencies: Dict[int, float] = {}
        for index, addresses in self._eviction_sets.items():
            total = 0.0
            for address in addresses:
                total += self.cache.access(address)
            total += float(self.rng.normal(0.0, self.noise_cycles)) \
                if self.noise_cycles else 0.0
            latencies[index] = total / len(addresses)
        return latencies

    def run_trial(self, victim_index: int,
                  victim_op: Optional[Callable[[int], None]] = None) -> AttackResult:
        """One PRIME → victim lookup → PROBE round."""
        victim_op = victim_op or self.victim.lookup
        self.prime()
        victim_op(victim_index)
        latencies = self.probe()
        recovered = max(latencies, key=latencies.get)
        return AttackResult(probe_latencies=latencies,
                            recovered_index=recovered,
                            true_index=victim_index)

    def run_trials(self, victim_index: int, repeats: int = 10,
                   victim_op: Optional[Callable[[int], None]] = None
                   ) -> "AggregatedAttack":
        """Average ``repeats`` measurements per set, as in Fig 3."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        sums = {index: 0.0 for index in self.monitored_indices}
        successes = 0
        for _ in range(repeats):
            result = self.run_trial(victim_index, victim_op=victim_op)
            successes += int(result.success)
            for index, latency in result.probe_latencies.items():
                sums[index] += latency
        means = {index: total / repeats for index, total in sums.items()}
        recovered = max(means, key=means.get)
        return AggregatedAttack(mean_latencies=means,
                                recovered_index=recovered,
                                true_index=victim_index,
                                trial_success_rate=successes / repeats)


@dataclass
class AggregatedAttack:
    """Averaged PRIME+PROBE measurements (one Fig 3 curve)."""

    mean_latencies: Dict[int, float]
    recovered_index: int
    true_index: int
    trial_success_rate: float

    @property
    def success(self) -> bool:
        return self.recovered_index == self.true_index
