"""The victim: an enclave embedding-table lookup running over the shared cache.

Mirrors the paper's SGX demonstration: an embedding layer whose row access
address is a direct function of the (secret) sparse-feature index. A
linear-scan variant is provided to show the defence removes the signal.
"""

from __future__ import annotations



from repro.sidechannel.cache import SetAssociativeCache
from repro.utils.validation import check_positive


class EmbeddingLookupVictim:
    """Table-lookup embedding layer with an observable cache footprint."""

    def __init__(self, cache: SetAssociativeCache, num_rows: int = 256,
                 embedding_dim: int = 64, element_bytes: int = 4,
                 base_address: int = 0x10_0000) -> None:
        check_positive("num_rows", num_rows)
        check_positive("embedding_dim", embedding_dim)
        self.cache = cache
        self.num_rows = num_rows
        self.embedding_dim = embedding_dim
        self.row_bytes = embedding_dim * element_bytes
        self.base_address = base_address

    def row_address(self, index: int) -> int:
        if not 0 <= index < self.num_rows:
            raise IndexError(f"index {index} out of range")
        return self.base_address + index * self.row_bytes

    def lookup(self, index: int) -> None:
        """The vulnerable operation: touch exactly the requested row."""
        self.cache.access_range(self.row_address(index), self.row_bytes)

    def lookup_linear_scan(self, index: int) -> None:
        """The protected operation: touch every row regardless of ``index``."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"index {index} out of range")
        for row in range(self.num_rows):
            self.cache.access_range(self.row_address(row), self.row_bytes)
