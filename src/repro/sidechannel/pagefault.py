"""Controlled-channel (page-fault) attack — the §III-A2 coarse channel.

A malicious OS clears present bits on the enclave's table pages, so every
lookup faults and reveals the accessed *page*. That yields the index at
page granularity; the paper notes attackers combine it with the cache
channel to scale to large tables (page narrows the range, cache resolves
within it). Both steps are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.utils.validation import check_positive

PAGE_SIZE = 4096


@dataclass
class PageFaultLog:
    """Pages observed faulting during one victim operation."""

    pages: List[int] = field(default_factory=list)

    def distinct(self) -> Set[int]:
        return set(self.pages)


class PageFaultObserver:
    """The OS-level observer: records each page the victim touches."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        check_positive("page_size", page_size)
        self.page_size = page_size
        self.log = PageFaultLog()

    def touch(self, address: int, num_bytes: int) -> None:
        first = address // self.page_size
        last = (address + num_bytes - 1) // self.page_size
        self.log.pages.extend(range(first, last + 1))

    def reset(self) -> None:
        self.log = PageFaultLog()


class PageChannelVictim:
    """Embedding lookup whose page-level accesses the OS can observe."""

    def __init__(self, observer: PageFaultObserver, num_rows: int,
                 embedding_dim: int, element_bytes: int = 4,
                 base_address: int = 0x10_0000) -> None:
        check_positive("num_rows", num_rows)
        self.observer = observer
        self.num_rows = num_rows
        self.row_bytes = embedding_dim * element_bytes
        self.base_address = base_address

    def row_address(self, index: int) -> int:
        if not 0 <= index < self.num_rows:
            raise IndexError(f"index {index} out of range")
        return self.base_address + index * self.row_bytes

    def rows_per_page(self) -> float:
        return self.observer.page_size / self.row_bytes

    def lookup(self, index: int) -> None:
        self.observer.touch(self.row_address(index), self.row_bytes)

    def lookup_linear_scan(self, index: int) -> None:
        if not 0 <= index < self.num_rows:
            raise IndexError(f"index {index} out of range")
        self.observer.touch(self.base_address, self.num_rows * self.row_bytes)


class ControlledChannelAttacker:
    """Recovers the candidate index range from observed page faults."""

    def __init__(self, victim: PageChannelVictim) -> None:
        self.victim = victim

    def observe_lookup(self, index: int) -> Tuple[int, int]:
        """Run one victim lookup; return the inferred [low, high) index range."""
        observer = self.victim.observer
        observer.reset()
        self.victim.lookup(index)
        pages = sorted(observer.log.distinct())
        return self._range_from_pages(pages)

    def _range_from_pages(self, pages: Sequence[int]) -> Tuple[int, int]:
        page_size = self.victim.observer.page_size
        base = self.victim.base_address
        row_bytes = self.victim.row_bytes
        first_byte = pages[0] * page_size
        last_byte = (pages[-1] + 1) * page_size - 1
        low = max(0, (first_byte - base - row_bytes + 1 + row_bytes - 1)
                  // row_bytes)
        high = min(self.victim.num_rows, (last_byte - base) // row_bytes + 1)
        return int(low), int(high)

    def candidates_after_lookup(self, index: int) -> int:
        """Size of the candidate set the page channel leaves."""
        low, high = self.observe_lookup(index)
        return high - low

    def observe_scan(self, index: int) -> int:
        """Candidate-set size against the linear-scan defence (= whole table)."""
        observer = self.victim.observer
        observer.reset()
        self.victim.lookup_linear_scan(index)
        pages = sorted(observer.log.distinct())
        low, high = self._range_from_pages(pages)
        return high - low


def combined_channel_candidates(num_rows: int, embedding_dim: int,
                                cache_line: int = 64,
                                element_bytes: int = 4,
                                page_size: int = PAGE_SIZE) -> int:
    """Candidate-set size when page + cache-line channels are combined.

    The page channel narrows the index to one page; the cache channel
    resolves line-granularity within it. With rows >= one line (always true
    for the paper's datasets), that pins the exact index — the "scaling"
    composition of §III-A2.
    """
    row_bytes = embedding_dim * element_bytes
    rows_sharing_a_line = max(1, cache_line // row_bytes)
    return min(num_rows, rows_sharing_a_line)
