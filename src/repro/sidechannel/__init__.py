"""Cache side-channel substrate: LLC model, victim, PRIME+PROBE attacker."""

from repro.sidechannel.attacker import (
    AggregatedAttack,
    AttackResult,
    PrimeProbeAttacker,
)
from repro.sidechannel.cache import CacheConfig, SetAssociativeCache
from repro.sidechannel.pagefault import (
    PAGE_SIZE,
    ControlledChannelAttacker,
    PageChannelVictim,
    PageFaultObserver,
    combined_channel_candidates,
)
from repro.sidechannel.victim import EmbeddingLookupVictim

__all__ = [
    "PAGE_SIZE",
    "ControlledChannelAttacker",
    "PageChannelVictim",
    "PageFaultObserver",
    "combined_channel_candidates",
    "AggregatedAttack",
    "AttackResult",
    "PrimeProbeAttacker",
    "CacheConfig",
    "SetAssociativeCache",
    "EmbeddingLookupVictim",
]
