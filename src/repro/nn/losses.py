"""Loss functions: binary cross-entropy (DLRM) and cross-entropy (LLM)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically-stable binary cross-entropy on raw logits.

    Uses ``max(x, 0) - x*y + log(1 + exp(-|x|))``, the standard stable form.
    """
    logits = as_tensor(logits)
    targets = as_tensor(np.asarray(targets, dtype=np.float64))
    relu_term = logits.relu()
    abs_term = ((logits.abs() * -1.0).exp() + 1.0).log()
    per_example = relu_term - logits * targets + abs_term
    return per_example.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy over integer class targets.

    ``logits`` has shape (..., num_classes); ``targets`` the matching integer
    shape (...,). Rows whose target is negative are ignored (padding).
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)
    keep = flat_targets >= 0
    if not keep.any():
        raise ValueError("cross_entropy received no valid (non-negative) targets")

    # log-softmax, stable
    shifted = flat_logits - Tensor(flat_logits.data.max(axis=-1, keepdims=True))
    log_probs = shifted - shifted.exp().sum(axis=-1, keepdims=True).log()

    rows = np.nonzero(keep)[0]
    picked = log_probs[rows, flat_targets[keep]]
    return picked.mean() * -1.0


def mse(prediction: Tensor, targets) -> Tensor:
    """Mean squared error (used in unit tests and sanity fits)."""
    prediction = as_tensor(prediction)
    diff = prediction - as_tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()
