"""Optimizers (SGD, Adam, AdamW) and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_non_negative, check_positive


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        check_positive("lr", lr)
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        # Deduplicate tied parameters (e.g. GPT-2 embedding/head weight tying)
        # so a shared tensor is not stepped twice per update.
        seen = set()
        unique: List[Parameter] = []
        for param in self.params:
            if id(param) not in seen:
                seen.add(id(param))
                unique.append(param)
        self.params = unique
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip global gradient norm in-place; returns the pre-clip norm."""
        check_positive("max_norm", max_norm)
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = math.sqrt(total)
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        check_non_negative("momentum", momentum)
        check_non_negative("weight_decay", weight_decay)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (decoupled decay in the AdamW subclass)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, decoupled: bool = False) -> None:
        super().__init__(params, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        check_non_negative("weight_decay", weight_decay)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step_count
        bias2 = 1.0 - beta2 ** self._step_count
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad * grad
            self._m[id(param)], self._v[id(param)] = m, v
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (the GPT-2 finetuning optimizer)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.01) -> None:
        super().__init__(params, lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, decoupled=True)


class CosineSchedule:
    """Cosine decay with linear warmup, as used in nanoGPT-style finetuning."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0) -> None:
        check_positive("base_lr", base_lr)
        check_non_negative("warmup_steps", warmup_steps)
        check_positive("total_steps", total_steps)
        if warmup_steps > total_steps:
            raise ValueError("warmup_steps must not exceed total_steps")
        self.base_lr = base_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / max(1, self.warmup_steps)
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine

    def apply(self, optimizer: Optimizer, step: int) -> float:
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr
