"""Module/Parameter abstractions mirroring the familiar torch.nn layout."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` registered as trainable state of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement :meth:`forward`. Parameter/submodule discovery,
    train/eval mode, and state-dict (de)serialisation are provided here.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count (deduplicated for tied weights)."""
        seen = set()
        total = 0
        for _, param in self.named_parameters():
            if id(param) in seen:
                continue
            seen.add(id(param))
            total += param.size
        return total

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat name → array mapping of all parameters (arrays are copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters(prefix)}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data[...] = value
