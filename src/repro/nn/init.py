"""Weight initialisation schemes."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def kaiming_uniform(shape: Tuple[int, ...], fan_in: int,
                    rng: SeedLike = None) -> np.ndarray:
    """He/Kaiming uniform init (the torch.nn.Linear default)."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = 1.0 / math.sqrt(fan_in)
    return new_rng(rng).uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int,
                   rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fans must be positive, got {fan_in}, {fan_out}")
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return new_rng(rng).uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.02,
           rng: SeedLike = None) -> np.ndarray:
    """Gaussian init (GPT-2 uses std=0.02 throughout)."""
    return new_rng(rng).normal(0.0, std, size=shape)
