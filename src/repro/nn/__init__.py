"""``repro.nn`` — a numpy-based neural-network framework.

This subpackage is the PyTorch substitute for the reproduction: a
reverse-mode autograd :class:`Tensor`, module system, layers, attention with
KV cache, losses, and optimizers — everything needed to train and serve the
paper's DLRM and GPT-2 models.
"""

from repro.nn import functional
from repro.nn.attention import KVCache, MultiHeadSelfAttention, TransformerBlock
from repro.nn.layers import (
    MLP,
    Dropout,
    EmbeddingTable,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import bce_with_logits, cross_entropy, mse
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam, AdamW, CosineSchedule, Optimizer, SGD
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    unbroadcast,
    zeros,
)

__all__ = [
    "functional",
    "KVCache",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "MLP",
    "Dropout",
    "EmbeddingTable",
    "GELU",
    "LayerNorm",
    "Linear",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "bce_with_logits",
    "cross_entropy",
    "mse",
    "Module",
    "Parameter",
    "Adam",
    "AdamW",
    "CosineSchedule",
    "Optimizer",
    "SGD",
    "load_state",
    "save_state",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
    "ones",
    "randn",
    "unbroadcast",
    "zeros",
]
