"""Saving and loading module state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str) -> None:
    """Write ``module``'s state dict to ``path`` (npz format)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain '/', so escape dots are fine but keep as-is.
    np.savez(path, **state)


def load_state(module: Module, path: str, strict: bool = True) -> None:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state, strict=strict)
