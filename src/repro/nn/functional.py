"""Functional neural-network operations built on :class:`repro.nn.Tensor`."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, as_tensor


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as used by GPT-2)."""
    x = as_tensor(x)
    c = math.sqrt(2.0 / math.pi)
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    x = as_tensor(x)
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered * (variance + eps) ** -0.5
    return normed * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight convention)."""
    out = as_tensor(x) @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def causal_mask(length: int) -> np.ndarray:
    """Additive causal attention mask: 0 on/below diagonal, -inf above."""
    mask = np.zeros((length, length))
    mask[np.triu_indices(length, k=1)] = -np.inf
    return mask
