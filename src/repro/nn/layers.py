"""Core neural-network layers: Linear, activations, LayerNorm, MLP, Embedding."""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: SeedLike = None) -> None:
        super().__init__()
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = in_features
        self.out_features = out_features
        generator = new_rng(rng)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), fan_in=in_features,
                                 rng=generator))
        self.bias = (Parameter(init.kaiming_uniform((out_features,), fan_in=in_features,
                                                    rng=generator))
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the final dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        check_positive("dim", dim)
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = list(modules)
        for index, module in enumerate(self._ordered):
            setattr(self, f"layer{index}", module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``layer_sizes`` lists every width including input and output, matching
    the paper's "512-256-64-16" notation for DLRM bottom/top FCs.
    """

    def __init__(self, layer_sizes: Sequence[int], activation: str = "relu",
                 final_activation: Optional[str] = None, rng: SeedLike = None) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layer_sizes = tuple(layer_sizes)
        generator = new_rng(rng)
        modules: List[Module] = []
        last = len(layer_sizes) - 2
        for index, (n_in, n_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
            modules.append(Linear(n_in, n_out, rng=generator))
            act = activation if index < last else final_activation
            if act is not None:
                modules.append(_make_activation(act))
        self.body = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


def _make_activation(name: str) -> Module:
    activations = {"relu": ReLU, "gelu": GELU, "sigmoid": Sigmoid, "tanh": Tanh}
    if name not in activations:
        raise ValueError(f"unknown activation {name!r}; expected one of {sorted(activations)}")
    return activations[name]()


class EmbeddingTable(Module):
    """A trainable lookup table (the *non-secure* storage-based method).

    Forward is a plain row gather — exactly the operation whose index the
    paper shows leaking through the cache side channel.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: SeedLike = None) -> None:
        super().__init__()
        check_positive("num_embeddings", num_embeddings)
        check_positive("embedding_dim", embedding_dim)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        scale = 1.0 / math.sqrt(embedding_dim)
        self.weight = Parameter(
            new_rng(rng).uniform(-scale, scale, size=(num_embeddings, embedding_dim)))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"index out of range for table of {self.num_embeddings} rows")
        return self.weight.gather_rows(indices)
