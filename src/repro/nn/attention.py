"""Multi-head causal self-attention with an incremental KV cache.

Implements the attention block used by the GPT-2 reproduction, including the
two inference stages the paper distinguishes:

* **prefill** — the whole prompt is processed at once (large embedding batch),
* **decode** — one token per step, reusing cached keys/values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive


@dataclass
class KVCache:
    """Per-layer cached keys and values, shape (batch, heads, time, head_dim)."""

    keys: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    def append(self, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append new keys/values along the time axis and return the full cache."""
        if self.keys is None:
            self.keys, self.values = k, v
        else:
            self.keys = np.concatenate([self.keys, k], axis=2)
            self.values = np.concatenate([self.values, v], axis=2)
        return self.keys, self.values

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]


class MultiHeadSelfAttention(Module):
    """Causal multi-head self-attention (GPT-2 style, fused QKV projection)."""

    def __init__(self, embed_dim: int, num_heads: int, dropout: float = 0.0,
                 rng: SeedLike = None) -> None:
        super().__init__()
        check_positive("embed_dim", embed_dim)
        check_positive("num_heads", num_heads)
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim {embed_dim} must be divisible by num_heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        generator = new_rng(rng)
        self.qkv = Linear(embed_dim, 3 * embed_dim, rng=generator)
        self.proj = Linear(embed_dim, embed_dim, rng=generator)
        self.attn_dropout = Dropout(dropout, rng=generator)

    def _split_heads(self, x: Tensor, batch: int, time: int) -> Tensor:
        # (B, T, C) -> (B, H, T, Hd)
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, cache: Optional[KVCache] = None) -> Tensor:
        """Attend over ``x`` (and the cache, if given).

        With a cache, ``x`` holds only the *new* positions (decode step);
        cached keys/values supply the history. Cached paths run without
        autograd (inference only).
        """
        batch, time, _ = x.shape
        qkv = self.qkv(x)
        q = self._split_heads(qkv[:, :, : self.embed_dim], batch, time)
        k = self._split_heads(qkv[:, :, self.embed_dim: 2 * self.embed_dim], batch, time)
        v = self._split_heads(qkv[:, :, 2 * self.embed_dim:], batch, time)

        past = 0
        if cache is not None:
            past = cache.length
            k_full, v_full = cache.append(k.data, v.data)
            k, v = Tensor(k_full), Tensor(v_full)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        total = past + time
        if time > 1:
            # Causal mask for the new block: query i may see keys 0..past+i.
            mask = np.zeros((time, total))
            for i in range(time):
                mask[i, past + i + 1:] = -np.inf
            scores = scores + Tensor(mask)
        attn = F.softmax(scores, axis=-1)
        attn = self.attn_dropout(attn)
        out = attn @ v  # (B, H, T, Hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, time, self.embed_dim)
        return self.proj(out)


class TransformerBlock(Module):
    """Pre-LN transformer block: LN → attention → residual, LN → MLP → residual."""

    def __init__(self, embed_dim: int, num_heads: int, mlp_ratio: int = 4,
                 dropout: float = 0.0, rng: SeedLike = None) -> None:
        super().__init__()
        from repro.nn.layers import GELU, LayerNorm, Sequential  # local to avoid cycle

        generator = new_rng(rng)
        self.ln1 = LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads, dropout=dropout,
                                           rng=generator)
        self.ln2 = LayerNorm(embed_dim)
        self.mlp = Sequential(
            Linear(embed_dim, mlp_ratio * embed_dim, rng=generator),
            GELU(),
            Linear(mlp_ratio * embed_dim, embed_dim, rng=generator),
        )
        self.resid_dropout = Dropout(dropout, rng=generator)

    def forward(self, x: Tensor, cache: Optional[KVCache] = None) -> Tensor:
        x = x + self.resid_dropout(self.attn(self.ln1(x), cache=cache))
        x = x + self.resid_dropout(self.mlp(self.ln2(x)))
        return x
