"""A reverse-mode automatic-differentiation tensor over numpy arrays.

This is the substrate that replaces PyTorch in this reproduction: it is
sufficient to train DLRM and GPT-style models end-to-end (Linear/LayerNorm/
attention/losses all build on the ops defined here).

Design notes
------------
* ``Tensor`` wraps a ``numpy.ndarray`` plus an optional backward closure and
  parent list. ``backward()`` runs a topological sort and accumulates
  gradients into ``.grad``.
* Broadcasting is supported everywhere numpy broadcasts; gradients are
  reduced back to the operand shape with :func:`unbroadcast`.
* Only float arrays participate in differentiation; integer tensors (e.g.
  token ids) flow through as plain data.
* The payload may also be a :class:`~repro.lazy.graph.LazyBuffer`: under
  graph capture (:func:`repro.lazy.capture`) every forward op *records*
  into the lazy graph instead of executing, because ``LazyBuffer``
  mirrors the ndarray operator surface these ops use. Lazy tensors are
  inference-only — capture runs under :func:`no_grad`, and the autograd
  machinery refuses lazy payloads loudly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lazy.graph import LazyBuffer

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def scatter_add(array: np.ndarray, indices, values: np.ndarray) -> None:
    """Indexed accumulation (``np.add.at``) behind one seam.

    This is the *only* secret-index-addressed memory operation in the
    framework's training path (embedding-gather backward). Keeping it
    behind a patchable function lets the security tests instrument it and
    prove that DHE training never calls it (§IV-C3).

    ``values`` must cast safely into ``array``'s dtype: ``np.add.at``
    would otherwise truncate silently (e.g. float64 gradients into a
    float32 table), which is rejected here — upcast the destination or
    downcast the values explicitly instead.
    """
    values = np.asarray(values)
    if values.dtype != array.dtype and not np.can_cast(
            values.dtype, array.dtype, casting="safe"):
        raise TypeError(
            f"scatter_add would truncate: values dtype {values.dtype} does "
            f"not cast safely to array dtype {array.dtype}; upcast the "
            f"array or cast the values explicitly")
    np.add.at(array, indices, values)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: ArrayLike, dtype=None) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    if isinstance(value, LazyBuffer):
        return Tensor(value)
    return Tensor(np.asarray(value, dtype=dtype))


# ----------------------------------------------------------------------
# Grad mode: disabled during inference capture, enabled by default
# ----------------------------------------------------------------------
_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    return _grad_enabled


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph construction: forward ops return plain tensors.

    Used by lazy graph capture (captures are inference-only) and usable
    directly to cut autograd bookkeeping from inference loops.
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


class Tensor:
    """An array with reverse-mode autograd support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    # Make ``ndarray (op) Tensor`` dispatch to Tensor's reflected methods.
    __array_priority__ = 100.0

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, LazyBuffer):
            if requires_grad:
                raise TypeError("lazy tensors are inference-only and cannot "
                                "require grad")
            self.data = data
        else:
            self.data = np.asarray(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                f"only floating tensors can require grad, got dtype {self.data.dtype}"
            )
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward = _backward
        self._parents = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    @property
    def is_lazy(self) -> bool:
        """True when this tensor records into a lazy graph."""
        return isinstance(self.data, LazyBuffer)

    def __len__(self) -> int:
        return len(self.data) if not self.is_lazy else self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        lazy_flag = ", lazy=True" if self.is_lazy else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{lazy_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied).

        For a lazy tensor this is the :class:`LazyBuffer` graph node, not
        numbers — realize through a captured graph to get values.
        """
        return self.data

    def item(self) -> float:
        if self.is_lazy:
            raise TypeError("cannot read a value out of a lazy tensor during "
                            "capture; .item() is an eager escape")
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.is_lazy:
            raise RuntimeError("autograd reached a lazy tensor; captures are "
                               "inference-only")
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so calling ``loss.backward()`` on a scalar
        loss works with no arguments).
        """
        if self.is_lazy:
            raise RuntimeError("cannot backpropagate through a lazy tensor; "
                               "captures are inference-only")
        if grad is None:
            grad = np.ones_like(self.data, dtype=self.data.dtype)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        topo: List[Tensor] = []
        visited = set()

        # Iterative topological sort to avoid recursion limits on deep nets.
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    @staticmethod
    def _needs_graph(*tensors: "Tensor") -> bool:
        if not _grad_enabled:
            return False
        return any(t.requires_grad or t._parents for t in tensors)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data
        if not Tensor._needs_graph(self, other):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad or other._parents:
                other._accumulate(unbroadcast(grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data
        if not Tensor._needs_graph(self, other):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad or other._parents:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self * as_tensor(other) ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        # 0 ** negative legitimately produces inf; keep numpy's value but
        # not its warning (callers relying on it should test isfinite).
        with np.errstate(divide="ignore"):
            out_data = self.data ** exponent
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            # d/dx x**p = p * x**(p-1) is undefined at x == 0 for p < 1
            # (and for p == 0). Rather than emit inf/nan into the graph,
            # clamp the local derivative to 0 exactly at the boundary —
            # the subgradient convention sqrt-at-zero training code
            # expects. Everywhere else the formula is untouched.
            with np.errstate(divide="ignore", invalid="ignore"):
                local = exponent * self.data ** (exponent - 1)
            local = np.asarray(local)
            bad = ~np.isfinite(local) & (np.asarray(self.data) == 0)
            if bad.any():
                local = np.where(bad, 0.0, local)
            self._accumulate(grad * local)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Comparisons (no grad; return plain tensors)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data > as_tensor(other).data)

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data < as_tensor(other).data)

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data >= as_tensor(other).data)

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data <= as_tensor(other).data)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if not Tensor._needs_graph(self, other):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad or self._parents:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                if self.data.ndim == 1 and grad_self.ndim > 1:
                    grad_self = grad_self.sum(axis=tuple(range(grad_self.ndim - 1)))
                self._accumulate(unbroadcast(grad_self, self.shape))
            if other.requires_grad or other._parents:
                if self.data.ndim == 1:
                    grad_other = np.expand_dims(self.data, -1) * grad
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                if other.data.ndim == 1 and grad_other.ndim > 1:
                    grad_other = grad_other.sum(axis=tuple(range(grad_other.ndim - 1)))
                other._accumulate(unbroadcast(grad_other, other.shape))

        out._backward = backward
        return out

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        if self.is_lazy:
            return Tensor(self.data.sigmoid())
        # Numerically stable piecewise evaluation.
        x = self.data
        out_data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, 0, None))),
                            np.exp(np.clip(x, None, 0)) / (1.0 + np.exp(np.clip(x, None, 0))))
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        mask = (self.data >= low) & (self.data <= high)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape))

        out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for a in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, a)
            self._accumulate(mask * g)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        inverse = np.argsort(axes)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        out._backward = backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            scatter_add(full, key, grad)
            self._accumulate(full)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Composition helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        if not Tensor._needs_graph(*tensors):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=tuple(tensors))
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad or tensor._parents:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])

        out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)
        if not Tensor._needs_graph(*tensors):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=tuple(tensors))

        def backward(grad: np.ndarray) -> None:
            slices = np.moveaxis(grad, axis, 0)
            for tensor, piece in zip(tensors, slices):
                if tensor.requires_grad or tensor._parents:
                    tensor._accumulate(piece)

        out._backward = backward
        return out

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather ``self[indices]`` with scatter-add backward.

        This is the (non-secure) embedding-table lookup primitive: gradients
        from repeated indices accumulate, matching ``nn.Embedding`` semantics.
        """
        indices = np.asarray(indices)
        out_data = self.data[indices]
        if not Tensor._needs_graph(self):
            return Tensor(out_data)
        out = Tensor(out_data, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            scatter_add(full, indices, grad)
            self._accumulate(full)

        out._backward = backward
        return out


def zeros(shape, dtype=np.float64, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, dtype=np.float64, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def randn(shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)
