"""The resilient batch executor: retries, breakers, hedging, shedding.

:func:`execute_with_resilience` replays a fault plan over the dynamic
batcher's schedule. The admission schedule itself stays fault-free — faults
only *post-process* execution through a cumulative slip, which is exactly
``0.0`` when no fault fires, so a resilience-wrapped engine with an inert
injector reproduces the plain engine's per-request arrays bit-for-bit
(the seed-parity regression pins this).

Per batch the executor runs an attempt loop: pick an admitted replica
(round-robin through the breaker-guarded fleet), resolve the injected
faults for that (batch, replica, attempt) coordinate, and either complete
(possibly spiked, possibly hedged), or back off and retry (transient error,
crash), or shed the batch once its deadline budget or attempt budget runs
out. Shed requests keep a censored latency (their deadline), so reported
percentiles reflect what clients observed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.resilience.breaker import BreakerConfig
from repro.resilience.degradation import DegradationLadder
from repro.resilience.dispatch import ResilientDispatcher
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.telemetry.runtime import get_registry


@dataclass
class ResiliencePolicy:
    """Everything the resilient serving path needs, in one object."""

    injector: FaultInjector = field(default_factory=FaultInjector)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    num_replicas: int = 3
    min_replicas: int = 1
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    hedge_after_factor: float = 3.0
    ladder: Optional[DegradationLadder] = None
    #: re-price a batch after degradation: technique name -> seconds.
    #: None keeps the originally priced service time (conservative).
    reprice: Optional[Callable[[str], float]] = None
    #: None = shed at deadlines only when faults can fire (keeps the
    #: fault-free path a pure passthrough); True/False forces it.
    shed_on_deadline: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.min_replicas > self.num_replicas:
            raise ValueError(
                f"min_replicas {self.min_replicas} exceeds num_replicas "
                f"{self.num_replicas}; the fleet can never be healthy")

    def build_dispatcher(self) -> ResilientDispatcher:
        return ResilientDispatcher(self.num_replicas, self.min_replicas,
                                   self.breaker, self.hedge_after_factor)

    @property
    def sheds_on_deadline(self) -> bool:
        if self.shed_on_deadline is None:
            return self.injector.enabled
        return self.shed_on_deadline


def execute_with_resilience(batches: Sequence, arrivals: np.ndarray,
                            service_seconds: float,
                            policy: ResiliencePolicy,
                            dispatcher: Optional[ResilientDispatcher] = None,
                            batch_service_seconds:
                            Optional[Sequence[float]] = None
                            ) -> Dict[str, object]:
    """Execute a batch schedule under a fault plan.

    ``batches`` is the :class:`~repro.serving.batcher.DynamicBatcher`
    output (fault-free admission schedule); ``service_seconds`` the priced
    per-batch service time. ``batch_service_seconds`` optionally overrides
    it per batch — how a cached engine composes with resilience: the cache
    declares each batch's fault-free executed time (hits cheaper than the
    scheduled slot, a first batch carrying setup dearer), faults stack on
    top of that baseline, and the slip a batch contributes is measured
    against its *own* baseline, so a fault-free run reproduces the cached
    plain engine's arrays bit-for-bit. Returns per-request
    ``queue_delays`` and ``service_latencies`` plus the fault-run
    accounting that
    :class:`~repro.resilience.report.ResilientServingReport` carries.
    """
    if (batch_service_seconds is not None
            and len(batch_service_seconds) != len(batches)):
        raise ValueError(
            f"batch_service_seconds has {len(batch_service_seconds)} "
            f"entries for {len(batches)} batches")
    injector = policy.injector
    retry = policy.retry
    if dispatcher is None:
        dispatcher = policy.build_dispatcher()
    registry = get_registry()

    queue_delays = np.empty(arrivals.size, dtype=np.float64)
    service_latencies = np.empty(arrivals.size, dtype=np.float64)

    slip = 0.0  # cumulative fault-induced delay; exactly 0.0 fault-free
    attempts_total = 0
    retries_total = 0
    shed_requests = 0
    crash_events = 0
    transient_faults = 0
    spike_events = 0
    repriced_service = None  # degradation-ladder override, once set

    for index, batch in enumerate(batches):
        base = (service_seconds if batch_service_seconds is None
                else float(batch_service_seconds[index]))
        window = slice(batch.first, batch.last)
        start = batch.start_seconds + slip
        queue_delays[window] = start - arrivals[window]

        # Stash-pressure windows drive the degradation ladder.
        if policy.ladder is not None and injector.stash is not None:
            if injector.stash_pressured(index):
                event = policy.ladder.record_pressure("stash-pressure",
                                                      index)
                if event is not None and policy.reprice is not None:
                    repriced_service = policy.reprice(
                        policy.ladder.current_technique)
            else:
                policy.ladder.record_recovery()
        service_current = (base if repriced_service is None
                           else repriced_service)

        deadline = (retry.deadline_for(float(arrivals[batch.first]))
                    if policy.sheds_on_deadline else math.inf)

        # ``waited`` accumulates backoff/eviction delay within this batch;
        # the fault-free path never touches it, so ``0.0 + latency`` keeps
        # the plain engine's per-request numbers bit-for-bit.
        waited = 0.0
        elapsed = None
        for attempt in range(retry.max_attempts):
            now = start + waited
            if now >= deadline:
                break
            replica = dispatcher.select(now)
            if replica is None:
                # Whole fleet evicted: wait for the first readmission.
                rejoin = dispatcher.next_admission_at(now)
                if not math.isfinite(rejoin) or rejoin >= deadline:
                    break
                waited = rejoin - start
                now = rejoin
                replica = dispatcher.select(now)
                if replica is None:
                    break
            attempts_total += 1
            if injector.crashes(replica, index, attempt):
                crash_events += 1
                dispatcher.mark_down(
                    replica, now + injector.crash.downtime_seconds, now)
                registry.counter("resilience.crashes_total").inc()
            elif injector.transient_error(replica, index, attempt):
                transient_faults += 1
                dispatcher.record_failure(replica, now)
                registry.counter("resilience.transients_total").inc()
            else:
                multiplier = injector.spike_multiplier(replica, index,
                                                       attempt)
                if multiplier > 1.0:
                    spike_events += 1
                    registry.counter("resilience.spikes_total").inc()
                latency = dispatcher.hedged_latency(
                    replica, service_current * multiplier,
                    service_current, now)
                dispatcher.record_success(replica, now + latency)
                elapsed = waited + latency
                break
            # Failed attempt: back off (jittered deterministically).
            retries_total += 1
            registry.counter("resilience.retries_total").inc()
            waited += retry.backoff_seconds(attempt,
                                            injector.jitter(index, attempt))

        if elapsed is None:
            # Shed: censor the batch's latency at its deadline.
            shed = batch.last - batch.first
            shed_requests += shed
            registry.counter("resilience.shed_total").inc(shed)
            elapsed = (max(0.0, deadline - start)
                       if math.isfinite(deadline) else waited)
        service_latencies[window] = elapsed
        slip += max(0.0, elapsed - base)

    stats = {
        "attempts_total": attempts_total,
        "retries_total": retries_total,
        "hedges_total": sum(replica.hedges
                            for replica in dispatcher.replicas),
        "shed_requests": shed_requests,
        "crash_events": crash_events,
        "transient_faults": transient_faults,
        "spike_events": spike_events,
        "degradation_events": (list(policy.ladder.events)
                               if policy.ladder is not None else []),
        "fleet_snapshot": dispatcher.snapshot(
            float(batches[-1].start_seconds) + slip if batches else 0.0),
    }
    return {"queue_delays": queue_delays,
            "service_latencies": service_latencies,
            "stats": stats,
            "dispatcher": dispatcher}
