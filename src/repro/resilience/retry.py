"""Retry budgets: exponential backoff + jitter and per-request deadlines.

Retries in an oblivious serving stack are latency policy, not security
policy — a retried batch re-executes the *same* data-independent schedule,
so the only questions are how long to wait between attempts and when to
give up. :class:`RetryPolicy` answers both: a capped exponential backoff
with deterministic jitter (the jitter draw comes from the fault injector's
seeded stream, keeping chaos runs replayable) and a per-request deadline
budget that composes with the batcher's admission wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_finite,
)


class DeadlineExceeded(RuntimeError):
    """A request's deadline budget ran out before an attempt could finish."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failed batch attempts are retried.

    ``deadline_seconds`` is the end-to-end per-request budget measured from
    the request's *arrival* — it covers batching wait, every attempt, and
    every backoff. A budget smaller than the batcher's ``max_wait_seconds``
    could expire before the first attempt even launches, which is a
    configuration contradiction; :meth:`validate_against` rejects it.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.002
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.100
    jitter_fraction: float = 0.1
    deadline_seconds: float = 0.500

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive_finite("base_backoff_seconds",
                              self.base_backoff_seconds)
        if not self.backoff_multiplier >= 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, got "
                             f"{self.backoff_multiplier!r}")
        check_positive_finite("max_backoff_seconds", self.max_backoff_seconds)
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1], got "
                             f"{self.jitter_fraction!r}")
        check_positive_finite("deadline_seconds", self.deadline_seconds)

    # ------------------------------------------------------------------
    def backoff_seconds(self, attempt: int, jitter_u: float = 0.5) -> float:
        """Wait before retry number ``attempt`` (0-based), jittered.

        ``jitter_u`` is a uniform [0, 1) variate — pass the fault
        injector's deterministic draw for replayable schedules. Jitter
        scales the capped exponential delay into
        ``[1 - jitter_fraction, 1 + jitter_fraction]``.
        """
        check_non_negative("attempt", attempt)
        if not 0.0 <= jitter_u <= 1.0:
            raise ValueError(f"jitter_u must be in [0, 1], got {jitter_u!r}")
        delay = min(self.base_backoff_seconds
                    * self.backoff_multiplier ** attempt,
                    self.max_backoff_seconds)
        return delay * (1.0 + self.jitter_fraction * (2.0 * jitter_u - 1.0))

    def deadline_for(self, arrival_seconds: float) -> float:
        """Absolute deadline of a request that arrived at ``arrival``."""
        return arrival_seconds + self.deadline_seconds

    def validate_against(self, batching_policy) -> None:
        """Reject deadlines the batcher alone could exhaust.

        ``batching_policy`` is a
        :class:`~repro.serving.batcher.BatchingPolicy`; its
        ``max_wait_seconds`` admission delay spends the same budget, so the
        deadline must strictly exceed it.
        """
        if self.deadline_seconds <= batching_policy.max_wait_seconds:
            raise ValueError(
                f"deadline_seconds {self.deadline_seconds} must exceed the "
                f"batcher's max_wait_seconds "
                f"{batching_policy.max_wait_seconds}; the budget would "
                f"expire during admission")


class DeadlineBudget:
    """The remaining budget of one in-flight request/batch."""

    def __init__(self, deadline_seconds: float) -> None:
        check_positive_finite("deadline_seconds", deadline_seconds)
        self.deadline_seconds = deadline_seconds

    def remaining(self, now_seconds: float) -> float:
        return self.deadline_seconds - now_seconds

    def expired(self, now_seconds: float) -> bool:
        return now_seconds >= self.deadline_seconds

    def require(self, now_seconds: float) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired(now_seconds):
            raise DeadlineExceeded(
                f"deadline {self.deadline_seconds:.6f}s exceeded at "
                f"t={now_seconds:.6f}s")
