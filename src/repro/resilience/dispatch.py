"""Health-aware replica dispatch: breakers, eviction/readmission, hedging.

:class:`~repro.serving.dispatcher.Dispatcher` prices homogeneous replica
fleets; this module adds the control plane a faulty fleet needs. Each
replica is guarded by a :class:`~repro.resilience.breaker.CircuitBreaker`
and a crash-downtime window; dispatch selects round-robin over replicas
that are currently admitted (breaker not OPEN, not crashed), evicting
tripped replicas and readmitting them after their half-open probes
succeed. Straggler attempts are hedged: once an attempt overruns
``hedge_after_factor`` times the priced service time, a second replica
runs the same batch and the earlier finisher wins — the classic
tail-latency cure, applied to whole (padded, data-independent) batches so
hedging leaks nothing about the request content.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive


class ReplicaState:
    """One replica's health bookkeeping."""

    __slots__ = ("breaker", "down_until", "dispatched", "failures", "hedges")

    def __init__(self, breaker: CircuitBreaker) -> None:
        self.breaker = breaker
        self.down_until = -math.inf
        self.dispatched = 0
        self.failures = 0
        self.hedges = 0

    def crashed(self, now_seconds: float) -> bool:
        return now_seconds < self.down_until


class ResilientDispatcher:
    """Routes batch attempts across a breaker-guarded replica fleet."""

    def __init__(self, num_replicas: int,
                 min_replicas: int = 1,
                 breaker_config: BreakerConfig = BreakerConfig(),
                 hedge_after_factor: float = 3.0) -> None:
        check_positive("num_replicas", num_replicas)
        check_positive("min_replicas", min_replicas)
        if min_replicas > num_replicas:
            raise ValueError(
                f"min_replicas {min_replicas} exceeds num_replicas "
                f"{num_replicas}; the fleet can never be healthy")
        if not hedge_after_factor >= 1.0:
            raise ValueError(f"hedge_after_factor must be >= 1, got "
                             f"{hedge_after_factor!r}")
        self.num_replicas = num_replicas
        self.min_replicas = min_replicas
        self.hedge_after_factor = hedge_after_factor
        self._breaker_config = breaker_config
        self.replicas: List[ReplicaState] = [
            ReplicaState(CircuitBreaker(breaker_config))
            for _ in range(num_replicas)]
        self._cursor = 0

    # ------------------------------------------------------------------
    # Fleet resizing (plan-epoch carry-over)
    # ------------------------------------------------------------------
    def ensure_replicas(self, num_replicas: int,
                        allow_shrink: bool = False) -> None:
        """Resize the fleet in place, preserving existing per-replica state.

        A plan-epoch transition that adds nodes must NOT reset the
        surviving replicas' breakers and crash windows — a node that was
        evicted before the epoch change is still evicted after it. New
        replicas join healthy (breaker CLOSED). Shrinking is a no-op
        unless ``allow_shrink`` is set: epochs that drop nodes simply stop
        routing to them, and their state stays around in case a later
        epoch re-adds them. The autoscaler's scale-down path passes
        ``allow_shrink=True`` *after* the scaled-down epochs retire (no
        live epoch routes to the dropped slots any more); the trailing
        slots are released, and a later scale-up re-adds fresh, healthy
        replicas — a decommissioned machine does not come back with its
        old breaker history. The fleet never shrinks below
        ``min_replicas``.
        """
        check_positive("num_replicas", num_replicas)
        if num_replicas > self.num_replicas:
            self.replicas.extend(
                ReplicaState(CircuitBreaker(self._breaker_config))
                for _ in range(num_replicas - self.num_replicas))
            self.num_replicas = num_replicas
        elif allow_shrink and num_replicas < self.num_replicas:
            if num_replicas < self.min_replicas:
                raise ValueError(
                    f"cannot shrink to {num_replicas} replicas below "
                    f"min_replicas {self.min_replicas}")
            del self.replicas[num_replicas:]
            self.num_replicas = num_replicas
            self._cursor %= num_replicas

    def replace_replica(self, replica: int) -> None:
        """Swap a fresh machine into a dead slot (the supervisor's heal).

        The replacement joins healthy — new breaker, no crash window, zero
        dispatch/failure counters — because it *is* a different machine;
        carrying the corpse's breaker history over would keep the slot
        evicted after the heal completed.
        """
        if not 0 <= replica < self.num_replicas:
            raise IndexError(
                f"replica {replica} out of range for a fleet of "
                f"{self.num_replicas}")
        self.replicas[replica] = ReplicaState(
            CircuitBreaker(self._breaker_config))
        get_registry().counter("resilience.replacements_total").inc()

    # ------------------------------------------------------------------
    # Admission / selection
    # ------------------------------------------------------------------
    def admitted(self, now_seconds: float) -> List[int]:
        """Replicas currently eligible for dispatch."""
        return [index for index, replica in enumerate(self.replicas)
                if replica.breaker.allows(now_seconds)
                and not replica.crashed(now_seconds)]

    def evicted(self, now_seconds: float) -> List[int]:
        """Replicas currently out of rotation (breaker OPEN or down)."""
        admitted = set(self.admitted(now_seconds))
        return [index for index in range(self.num_replicas)
                if index not in admitted]

    def healthy_count(self, now_seconds: float) -> int:
        return len(self.admitted(now_seconds))

    def below_min(self, now_seconds: float) -> bool:
        """Has the fleet shrunk below its redundancy floor?"""
        return self.healthy_count(now_seconds) < self.min_replicas

    def select(self, now_seconds: float,
               exclude: tuple = ()) -> Optional[int]:
        """Round-robin pick among admitted replicas (None if all out)."""
        candidates = [index for index in self.admitted(now_seconds)
                      if index not in exclude]
        if not candidates:
            return None
        # Round-robin: first candidate at or after the cursor.
        chosen = min(candidates,
                     key=lambda index: (index < self._cursor, index))
        self._cursor = (chosen + 1) % self.num_replicas
        self.replicas[chosen].dispatched += 1
        return chosen

    def next_admission_at(self, now_seconds: float) -> float:
        """Earliest future time any evicted replica may rejoin.

        ``inf`` when every replica is admitted already (nothing to wait
        for) — callers treat that as "no recovery event ahead".
        """
        times = []
        for replica in self.replicas:
            candidates = [time for time in (replica.down_until,
                                            replica.breaker.retry_at())
                          if time > now_seconds]
            if candidates:
                times.append(max(candidates))
        return min(times) if times else math.inf

    # ------------------------------------------------------------------
    # Outcome recording
    # ------------------------------------------------------------------
    def record_success(self, replica: int, now_seconds: float) -> None:
        self.replicas[replica].breaker.record_success(now_seconds)
        self._export_state(now_seconds)

    def record_failure(self, replica: int, now_seconds: float) -> None:
        state = self.replicas[replica]
        state.failures += 1
        state.breaker.record_failure(now_seconds)
        self._export_state(now_seconds)

    def mark_down(self, replica: int, until_seconds: float,
                  now_seconds: float) -> None:
        """Crash: the replica leaves rotation until ``until_seconds``."""
        state = self.replicas[replica]
        state.down_until = max(state.down_until, until_seconds)
        state.failures += 1
        state.breaker.record_failure(now_seconds)
        self._export_state(now_seconds)

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def hedge_threshold(self, service_seconds: float) -> float:
        """Attempt duration beyond which a hedge launches."""
        return self.hedge_after_factor * service_seconds

    def hedged_latency(self, primary: int, primary_latency: float,
                       service_seconds: float,
                       now_seconds: float) -> float:
        """Effective latency of an attempt, hedging stragglers.

        If the primary attempt would overrun the hedge threshold and a
        second replica is free, the same (padded, data-independent) batch
        launches there after the threshold elapses; the earlier finisher
        wins. Returns the effective attempt latency.
        """
        threshold = self.hedge_threshold(service_seconds)
        if primary_latency <= threshold:
            return primary_latency
        secondary = self.select(now_seconds + threshold, exclude=(primary,))
        if secondary is None:
            return primary_latency
        self.replicas[secondary].hedges += 1
        get_registry().counter("resilience.hedges_total").inc()
        hedged = threshold + service_seconds
        effective = min(primary_latency, hedged)
        # Whichever finished first serves the batch; both replicas stay
        # healthy (a slow success is not a breaker failure).
        self.record_success(secondary, now_seconds + effective)
        return effective

    # ------------------------------------------------------------------
    def _export_state(self, now_seconds: float) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        worst = max(replica.breaker.state_value(now_seconds)
                    for replica in self.replicas)
        registry.gauge("breaker.state").set(worst)
        registry.gauge("resilience.healthy_replicas").set(
            self.healthy_count(now_seconds))

    def health_summary(self, now_seconds: float) -> Dict[str, int]:
        """Aggregate, secret-free fleet health counts.

        This is the only dispatcher view the autoscale control loop reads:
        whole-fleet counts, never per-request or per-table state, so a
        scale decision derived from it cannot encode anything about
        request content. ``crashed`` counts replicas inside a crash
        window; ``open_breakers``/``half_open_breakers`` count breaker
        states at ``now_seconds``.
        """
        from repro.resilience.breaker import HALF_OPEN, OPEN

        open_breakers = half_open = crashed = 0
        for replica in self.replicas:
            if replica.crashed(now_seconds):
                crashed += 1
            state = replica.breaker.state(now_seconds)
            if state == OPEN:
                open_breakers += 1
            elif state == HALF_OPEN:
                half_open += 1
        return {
            "num_replicas": self.num_replicas,
            "healthy": self.healthy_count(now_seconds),
            "open_breakers": open_breakers,
            "half_open_breakers": half_open,
            "crashed": crashed,
        }

    def snapshot(self, now_seconds: float) -> Dict[str, object]:
        """JSON-ready fleet health view."""
        return {
            "num_replicas": self.num_replicas,
            "min_replicas": self.min_replicas,
            "admitted": self.admitted(now_seconds),
            "evicted": self.evicted(now_seconds),
            "states": [replica.breaker.state(now_seconds)
                       for replica in self.replicas],
            "dispatched": [replica.dispatched for replica in self.replicas],
            "failures": [replica.failures for replica in self.replicas],
            "hedges": [replica.hedges for replica in self.replicas],
            "trips": [replica.breaker.trips for replica in self.replicas],
            "readmissions": [replica.breaker.readmissions
                             for replica in self.replicas],
        }
