"""Fault tolerance for the oblivious serving stack.

Fault injection (:mod:`~repro.resilience.faults`), retry/deadline budgets
(:mod:`~repro.resilience.retry`), per-replica circuit breakers
(:mod:`~repro.resilience.breaker`), health-aware dispatch with hedging
(:mod:`~repro.resilience.dispatch`), obliviousness-preserving degradation
(:mod:`~repro.resilience.degradation`), and the chaos harness
(:mod:`~repro.resilience.chaos`). The serving package never imports this
one at module level — the engine pulls the executor in lazily, so the
fault-free path carries no resilience cost.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.resilience.degradation import (
    DEFAULT_CHAIN,
    FORBIDDEN_TECHNIQUE,
    OBLIVIOUS_TECHNIQUES,
    DegradationEvent,
    DegradationLadder,
)
from repro.resilience.dispatch import ReplicaState, ResilientDispatcher
from repro.resilience.faults import (
    FaultInjectingBackend,
    FaultInjector,
    LatencySpikeFault,
    ReplicaCrashFault,
    StashPressureFault,
    TransientBackendError,
    TransientErrorFault,
)
from repro.resilience.policy import ResiliencePolicy, execute_with_resilience
from repro.resilience.report import ResilientServingReport
from repro.resilience.retry import DeadlineBudget, DeadlineExceeded, RetryPolicy

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_VALUES",
    "BreakerConfig",
    "CircuitBreaker",
    "DEFAULT_CHAIN",
    "FORBIDDEN_TECHNIQUE",
    "OBLIVIOUS_TECHNIQUES",
    "DegradationEvent",
    "DegradationLadder",
    "ReplicaState",
    "ResilientDispatcher",
    "FaultInjectingBackend",
    "FaultInjector",
    "LatencySpikeFault",
    "ReplicaCrashFault",
    "StashPressureFault",
    "TransientBackendError",
    "TransientErrorFault",
    "ResiliencePolicy",
    "execute_with_resilience",
    "ResilientServingReport",
    "DeadlineBudget",
    "DeadlineExceeded",
    "RetryPolicy",
]
