"""Deterministic, seedable fault injection for the serving stack.

A production fleet fails in a handful of canonical ways — a replica
crashes and stays down for a window, a batch sees a latency spike, a
backend call errors transiently, an ORAM controller comes under stash
pressure. :class:`FaultInjector` models all four behind one seed.

Every decision is a **pure function of (seed, fault kind, event
coordinates)**: the injector derives a fresh counter-free generator per
decision from those integers, so the fault schedule is independent of call
order, identical across replays of the same seed, and enumerable up front
(:meth:`FaultInjector.schedule`) — which is exactly what the chaos
harness's determinism gate asserts.

The injector hooks the two seams the paper's serving stack exposes:

* the :class:`~repro.serving.backends.ExecutionBackend` protocol, via
  :class:`FaultInjectingBackend` (latency multiplied, or
  :class:`TransientBackendError` raised);
* the ORAM controller, via :meth:`FaultInjector.stash_pressure` (the
  persistent stash bound temporarily tightened, forcing the overflow
  signal and the recovery/degradation machinery to engage).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.utils.validation import check_positive, check_probability

#: stable integer ids mixed into the per-decision seed material
_KIND_IDS = {
    "crash": 1,
    "spike": 2,
    "transient": 3,
    "stash": 4,
    "jitter": 5,
}


class TransientBackendError(RuntimeError):
    """An injected, retryable backend failure (the fault model's 5xx)."""


@dataclass(frozen=True)
class ReplicaCrashFault:
    """A replica goes down mid-batch and stays down for a window."""

    probability: float = 0.0        # per (replica, batch, attempt)
    downtime_seconds: float = 0.050

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        check_positive("downtime_seconds", self.downtime_seconds)


@dataclass(frozen=True)
class LatencySpikeFault:
    """A batch execution runs ``multiplier`` times slower than priced."""

    probability: float = 0.0        # per (replica, batch, attempt)
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        if not self.multiplier >= 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier!r}")


@dataclass(frozen=True)
class TransientErrorFault:
    """A backend call fails retryably (no state lost, no downtime)."""

    probability: float = 0.0        # per (replica, batch, attempt)

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)


@dataclass(frozen=True)
class StashPressureFault:
    """ORAM stash pressure: the persistent bound temporarily tightens."""

    probability: float = 0.0        # per pressure-window event
    capacity_fraction: float = 0.25  # fraction of the bound that survives

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(f"capacity_fraction must be in (0, 1], got "
                             f"{self.capacity_fraction!r}")


class FaultInjector:
    """All fault decisions for one chaos run, derived from one seed.

    ``None`` for a fault model means that fault never fires; an injector
    with all models ``None`` is inert (``enabled`` is False) and the
    serving path treats it exactly like no injector at all.
    """

    def __init__(self, seed: int = 0,
                 crash: Optional[ReplicaCrashFault] = None,
                 spike: Optional[LatencySpikeFault] = None,
                 transient: Optional[TransientErrorFault] = None,
                 stash: Optional[StashPressureFault] = None) -> None:
        self.seed = int(seed)
        self.crash = crash
        self.spike = spike
        self.transient = transient
        self.stash = stash

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any fault model can actually fire."""
        return any(model is not None and model.probability > 0.0
                   for model in (self.crash, self.spike, self.transient,
                                 self.stash))

    def _draw(self, kind: str, *coords: int) -> float:
        """Uniform [0, 1) draw keyed purely by (seed, kind, coords)."""
        material = [self.seed, _KIND_IDS[kind]]
        material.extend(int(c) for c in coords)
        return float(np.random.default_rng(material).random())

    # ------------------------------------------------------------------
    # Decision points (replica, batch, attempt are event coordinates)
    # ------------------------------------------------------------------
    def crashes(self, replica: int, batch: int, attempt: int) -> bool:
        if self.crash is None or self.crash.probability == 0.0:
            return False
        return self._draw("crash", replica, batch,
                          attempt) < self.crash.probability

    def spike_multiplier(self, replica: int, batch: int,
                         attempt: int) -> float:
        """Service-time multiplier for this attempt (1.0 = no spike)."""
        if self.spike is None or self.spike.probability == 0.0:
            return 1.0
        if self._draw("spike", replica, batch,
                      attempt) < self.spike.probability:
            return self.spike.multiplier
        return 1.0

    def transient_error(self, replica: int, batch: int,
                        attempt: int) -> bool:
        if self.transient is None or self.transient.probability == 0.0:
            return False
        return self._draw("transient", replica, batch,
                          attempt) < self.transient.probability

    def stash_pressured(self, event: int) -> bool:
        """Does pressure-window ``event`` come under stash pressure?"""
        if self.stash is None or self.stash.probability == 0.0:
            return False
        return self._draw("stash", event) < self.stash.probability

    def jitter(self, batch: int, attempt: int) -> float:
        """Deterministic uniform [0, 1) draw for retry-backoff jitter."""
        return self._draw("jitter", batch, attempt)

    # ------------------------------------------------------------------
    # The enumerable schedule (determinism gate + report artifact)
    # ------------------------------------------------------------------
    def schedule(self, num_batches: int, num_replicas: int,
                 attempts: int = 1) -> Dict[str, List[List[int]]]:
        """Every fault that would fire over a (batch, replica, attempt) grid.

        Returned as sorted coordinate lists per fault kind — a compact,
        JSON-stable digest of the whole fault plan. Identical seeds yield
        identical schedules; that is the contract the chaos harness pins.
        """
        check_positive("num_batches", num_batches)
        check_positive("num_replicas", num_replicas)
        check_positive("attempts", attempts)
        crashes: List[List[int]] = []
        spikes: List[List[int]] = []
        transients: List[List[int]] = []
        pressured: List[List[int]] = []
        for batch in range(num_batches):
            if self.stash_pressured(batch):
                pressured.append([batch])
            for replica in range(num_replicas):
                for attempt in range(attempts):
                    coords = [batch, replica, attempt]
                    if self.crashes(replica, batch, attempt):
                        crashes.append(coords)
                    if self.spike_multiplier(replica, batch, attempt) > 1.0:
                        spikes.append(coords)
                    if self.transient_error(replica, batch, attempt):
                        transients.append(coords)
        return {"crashes": crashes, "spikes": spikes,
                "transients": transients, "stash_pressure": pressured}

    # ------------------------------------------------------------------
    # The ORAM hook
    # ------------------------------------------------------------------
    @contextmanager
    def stash_pressure(self, controller, event: int) -> Iterator[bool]:
        """Tighten ``controller``'s persistent stash bound for one window.

        Yields whether pressure actually fired for ``event``. While the
        window is open, accesses that exceed the tightened bound raise
        :class:`~repro.oram.stash.StashOverflowError` through the
        controller's overflow signal; the original bound is always
        restored on exit.
        """
        fired = self.stash_pressured(event)
        if not fired:
            yield False
            return
        original = controller.persistent_stash_capacity
        controller.persistent_stash_capacity = max(
            1, int(original * self.stash.capacity_fraction))
        try:
            yield True
        finally:
            controller.persistent_stash_capacity = original


class FaultInjectingBackend:
    """An :class:`ExecutionBackend` decorator that injects faults.

    Wraps any backend satisfying the protocol. Each latency resolution is
    one fault event: a transient fault raises
    :class:`TransientBackendError`, a latency spike multiplies the inner
    backend's answer. Events are numbered by an internal counter, so a
    fixed call sequence (the engine's per-table pricing loop is one)
    replays identically under the same seed.
    """

    def __init__(self, inner, injector: FaultInjector,
                 replica: int = 0) -> None:
        if not (hasattr(inner, "technique_latency")
                and hasattr(inner, "generator_latency")):
            raise TypeError(f"not an execution backend: {inner!r}")
        self.inner = inner
        self.injector = injector
        self.replica = int(replica)
        self._event = 0
        self.name = f"fault-injecting({getattr(inner, 'name', '?')})"

    def _next_event(self) -> int:
        event = self._event
        self._event += 1
        return event

    def _resolve(self, base_latency: float) -> float:
        event = self._next_event()
        if self.injector.transient_error(self.replica, event, 0):
            raise TransientBackendError(
                f"injected transient backend error (replica "
                f"{self.replica}, event {event})")
        return base_latency * self.injector.spike_multiplier(
            self.replica, event, 0)

    def technique_latency(self, technique: str, table_size: int, dim: int,
                          batch: int, threads: int = 1) -> float:
        return self._resolve(self.inner.technique_latency(
            technique, table_size, dim, batch, threads))

    def generator_latency(self, generator, batch: int,
                          threads: int = 1) -> float:
        return self._resolve(self.inner.generator_latency(
            generator, batch, threads))
