"""Obliviousness-preserving degradation: ORAM → DHE → linear scan.

When a table's protection technique keeps failing (stash overflow under
pressure, exhausted retry budgets), availability demands stepping down to
a cheaper technique — but a naive "fall back to table lookup on error"
reopens the exact access-pattern channel the paper closes. The
:class:`DegradationLadder` makes the degradation path itself part of the
security argument:

* every rung of the chain must be an *oblivious* technique
  (:data:`OBLIVIOUS_TECHNIQUES`); the raw ``lookup`` baseline is rejected
  at construction, so no failure sequence can ever reach it;
* every transition is re-validated by the
  :class:`~repro.telemetry.audit.LeakageAuditor` — the target technique is
  replayed against contrasting secrets and must come out
  access-pattern-indistinguishable before the transition is considered
  healthy;
* every transition lands in telemetry
  (``resilience.degradations_total``) and in the ladder's event log, so a
  chaos report can prove where a run ended up and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry.runtime import get_registry
from repro.utils.validation import check_positive

#: techniques whose access patterns are secret-independent (auditable)
OBLIVIOUS_TECHNIQUES = frozenset({
    "scan", "dhe-uniform", "dhe-varied", "path-oram", "circuit-oram",
})

#: the access-pattern-leaking baseline — never a legal rung
FORBIDDEN_TECHNIQUE = "lookup"

#: the default chain: strongest isolation first, cheapest oblivious last
DEFAULT_CHAIN = ("path-oram", "dhe-varied", "scan")


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded rung-down transition."""

    from_technique: str
    to_technique: str
    cause: str
    batch_index: int
    audit_passed: bool
    audit_divergence: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "from": self.from_technique,
            "to": self.to_technique,
            "cause": self.cause,
            "batch_index": self.batch_index,
            "audit_passed": self.audit_passed,
            "audit_divergence": self.audit_divergence,
        }


@dataclass
class DegradationLadder:
    """Steps one table down an explicitly oblivious technique chain.

    ``trigger_after`` consecutive pressure signals (recorded via
    :meth:`record_pressure`) trip one rung; :meth:`degrade` forces a rung
    directly. The ladder audits each target technique with a small live
    replica of that technique (``audit_rows`` x ``audit_dim``) — cheap
    enough to run inline on every transition.
    """

    table_size: int
    chain: Sequence[str] = DEFAULT_CHAIN
    trigger_after: int = 3
    audit_rows: int = 16
    audit_dim: int = 4
    audit_secret_length: int = 8
    audit_seed: int = 0
    events: List[DegradationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("table_size", self.table_size)
        check_positive("trigger_after", self.trigger_after)
        if not self.chain:
            raise ValueError("degradation chain cannot be empty")
        for technique in self.chain:
            if technique == FORBIDDEN_TECHNIQUE:
                raise ValueError(
                    "the degradation chain must never contain the raw "
                    f"{FORBIDDEN_TECHNIQUE!r} baseline — it reopens the "
                    "access-pattern channel")
            if technique not in OBLIVIOUS_TECHNIQUES:
                raise ValueError(
                    f"technique {technique!r} is not in the audited "
                    f"oblivious set {sorted(OBLIVIOUS_TECHNIQUES)}")
        self._position = 0
        self._pressure_streak = 0

    # ------------------------------------------------------------------
    @property
    def current_technique(self) -> str:
        return self.chain[self._position]

    @property
    def exhausted(self) -> bool:
        """At the bottom rung — no further degradation is possible."""
        return self._position == len(self.chain) - 1

    @property
    def degradations(self) -> int:
        return len(self.events)

    def current_latency(self, backend, dim: int, batch: int,
                        threads: int = 1) -> float:
        """Price the current rung through an execution backend."""
        return backend.technique_latency(self.current_technique,
                                         self.table_size, dim, batch,
                                         threads)

    # ------------------------------------------------------------------
    def record_pressure(self, cause: str,
                        batch_index: int = -1
                        ) -> Optional[DegradationEvent]:
        """One pressure signal; trips a rung after ``trigger_after`` in a row."""
        self._pressure_streak += 1
        if self._pressure_streak < self.trigger_after:
            return None
        self._pressure_streak = 0
        return self.degrade(cause, batch_index)

    def record_recovery(self) -> None:
        """A healthy window: the pressure streak resets."""
        self._pressure_streak = 0

    def degrade(self, cause: str,
                batch_index: int = -1) -> Optional[DegradationEvent]:
        """Step one rung down, audit the target, record the transition.

        Returns None when already at the bottom rung (the ladder never
        leaves the oblivious set, so there is nothing weaker to offer).
        """
        if self.exhausted:
            return None
        source = self.current_technique
        self._position += 1
        target = self.current_technique
        finding = self._audit_technique(target)
        event = DegradationEvent(
            from_technique=source, to_technique=target, cause=cause,
            batch_index=batch_index,
            audit_passed=finding.passed and finding.observed_oblivious,
            audit_divergence=finding.divergence)
        self.events.append(event)
        registry = get_registry()
        registry.counter("resilience.degradations_total").inc()
        registry.gauge("resilience.ladder_position").set(self._position)
        if not event.audit_passed:
            registry.counter("resilience.degradation_audit_failures_total").inc()
        return event

    def reset(self) -> None:
        """Back to the top rung (after the underlying fault cleared)."""
        self._position = 0
        self._pressure_streak = 0

    # ------------------------------------------------------------------
    def _audit_technique(self, technique: str):
        """Leakage-audit a small live instance of ``technique``."""
        from repro.telemetry.audit import (
            MODE_EXACT,
            MODE_STRUCTURAL,
            AuditSubject,
            LeakageAuditor,
        )

        rows, dim = self.audit_rows, self.audit_dim
        length, seed = self.audit_secret_length, self.audit_seed
        secrets: List[Sequence[int]] = [
            [0] * length,
            [rows - 1] * length,
            [index % rows for index in range(length)],
        ]

        if technique in ("path-oram", "circuit-oram"):
            from repro.oram.circuit_oram import CircuitORAM
            from repro.oram.path_oram import PathORAM

            oram_class = PathORAM if technique == "path-oram" else CircuitORAM

            def run(tracer, secret):
                # Rebuild from the same seed per secret so randomness is
                # replayed; drop initialisation traffic.
                oram = oram_class(rows, dim, rng=seed, stash_capacity=rows,
                                  tracer=tracer)
                tracer.clear()
                for block in secret:
                    oram.read(int(block))

            mode = MODE_STRUCTURAL
        elif technique in ("dhe-uniform", "dhe-varied"):
            from repro.embedding.dhe import DHEEmbedding

            dhe = DHEEmbedding(rows, dim, k=16, fc_sizes=(16,),
                               num_buckets=1024, rng=seed)

            def run(tracer, secret):
                dhe.generate_traced(np.asarray(secret), tracer)

            mode = MODE_EXACT
        else:  # "scan" — the chain validator admits nothing else
            from repro.embedding.scan import LinearScanEmbedding

            scan = LinearScanEmbedding(rows, dim, rng=seed)

            def run(tracer, secret):
                scan.generate_traced(np.asarray(secret), tracer)

            mode = MODE_EXACT

        subject = AuditSubject(f"degraded-{technique}", run, secrets,
                               mode=mode)
        return LeakageAuditor().audit(subject)
