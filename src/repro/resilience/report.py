"""Serving reports under faults: availability, inflation, degradations.

Extends :class:`~repro.serving.report.ServingReport` with the quantities a
chaos run adds on top of the happy path — how many attempts each batch
needed, how many requests were shed at their deadline, which faults fired,
and where every degradation ladder ended up. ``to_dict`` emits only
simulated quantities (no wall-clock data), so two runs of the same seed
serialize byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.resilience.degradation import DegradationEvent
from repro.serving.report import ServingReport


@dataclass
class ResilientServingReport(ServingReport):
    """A :class:`ServingReport` annotated with fault-run accounting.

    Shed requests stay in the latency arrays (their latency is censored at
    the deadline), so percentiles reflect what clients actually saw;
    ``availability`` separates out how many got a real answer.
    """

    attempts_total: int = 0
    retries_total: int = 0
    hedges_total: int = 0
    shed_requests: int = 0
    crash_events: int = 0
    transient_faults: int = 0
    spike_events: int = 0
    degradation_events: List[DegradationEvent] = field(default_factory=list)
    fleet_snapshot: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def availability(self) -> float:
        """Fraction of requests that completed before their deadline."""
        if self.num_requests == 0:
            return 0.0
        return 1.0 - self.shed_requests / self.num_requests

    @property
    def degradations(self) -> int:
        return len(self.degradation_events)

    def sla_violations(self, sla_seconds: float) -> int:
        """Requests over the SLA (shed requests always count)."""
        return int(np.count_nonzero(self.latencies > sla_seconds))

    def p99_inflation(self, baseline: ServingReport) -> float:
        """This run's p99 relative to a fault-free baseline's p99."""
        if baseline.p99 <= 0.0:
            return float("inf") if self.p99 > 0.0 else 1.0
        return self.p99 / baseline.p99

    # ------------------------------------------------------------------
    def to_dict(self, sla_seconds: Optional[float] = None
                ) -> Dict[str, object]:
        """JSON-stable digest: simulated quantities only, no wall clock."""
        digest: Dict[str, object] = {
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "scan_features": self.scan_features,
            "dhe_features": self.dhe_features,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "mean_queue_delay_seconds": self.mean_queue_delay,
            "throughput_rps": self.throughput(),
            "availability": self.availability,
            "attempts_total": self.attempts_total,
            "retries_total": self.retries_total,
            "hedges_total": self.hedges_total,
            "shed_requests": self.shed_requests,
            "crash_events": self.crash_events,
            "transient_faults": self.transient_faults,
            "spike_events": self.spike_events,
            "degradations": [event.to_dict()
                             for event in self.degradation_events],
        }
        if sla_seconds is not None:
            digest["sla_seconds"] = sla_seconds
            digest["sla_violations"] = self.sla_violations(sla_seconds)
            digest["sla_attainment"] = self.sla_attainment(sla_seconds)
        if self.fleet_snapshot is not None:
            digest["fleet"] = self.fleet_snapshot
        return digest

    # ------------------------------------------------------------------
    @classmethod
    def from_serving_report(cls, report: ServingReport,
                            **extras) -> "ResilientServingReport":
        """Lift a plain report into the resilient shape."""
        return cls(num_requests=report.num_requests,
                   num_batches=report.num_batches,
                   latencies=report.latencies,
                   scan_features=report.scan_features,
                   dhe_features=report.dhe_features,
                   batch_time_total=report.batch_time_total,
                   queue_delays=report.queue_delays,
                   service_latencies=report.service_latencies,
                   cache_hits=report.cache_hits,
                   cache_misses=report.cache_misses,
                   cache_bytes_resident=report.cache_bytes_resident,
                   **extras)
