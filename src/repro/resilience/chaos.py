"""The chaos harness: the Fig 13 serving sweep replayed under faults.

Runs the paper's Terabyte serving configuration through the resilient
execution path under escalating fault scenarios — a fault-free baseline, a
crash/spike/transient storm, and an ORAM stash-pressure scenario that
drives the obliviousness-preserving degradation ladder — and reports
availability, p99 inflation over the baseline, SLA violations, and every
degradation transition with its leakage-audit verdict.

Everything is derived from one seed: the fault schedule, the Poisson
arrival trace, and therefore the whole report. The emitted JSON contains
only simulated quantities (latencies in simulated seconds, event counts,
deterministic counters — never wall-clock spans), so two runs with the
same seed produce byte-identical artifacts; CI pins that.

CLI::

    python -m repro.resilience.chaos --seed 7 --json chaos.json
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.costmodel import DLRM_DHE_UNIFORM_16, DLRM_DHE_UNIFORM_64
from repro.data import TERABYTE_SPEC, DlrmDatasetSpec
from repro.resilience.degradation import DegradationLadder
from repro.resilience.faults import (
    FaultInjector,
    LatencySpikeFault,
    ReplicaCrashFault,
    StashPressureFault,
    TransientErrorFault,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import ResilientServingReport
from repro.resilience.retry import RetryPolicy
from repro.serving import ExecutionEngine, ServingConfig
from repro.serving.batcher import BatchingPolicy

#: the chaos gates CI enforces
AVAILABILITY_FLOOR = 0.99

SLA_SECONDS = 0.020
NUM_REQUESTS = 512
RATE_RPS = 2000.0
BATCH = 32


def _build_engine(spec: DlrmDatasetSpec, batch: int,
                  resilience: Optional[ResiliencePolicy]) -> ExecutionEngine:
    from repro.hybrid import OfflineProfiler, build_threshold_database

    dim = spec.embedding_dim
    uniform = DLRM_DHE_UNIFORM_16 if dim == 16 else DLRM_DHE_UNIFORM_64
    profiler = OfflineProfiler(uniform)
    profile = profiler.profile(techniques=("scan", "dhe-varied"),
                               dims=(dim,), batches=(batch,),
                               threads_list=(1,))
    thresholds = build_threshold_database(
        profile, dhe_technique="dhe-varied", dims=(dim,), batches=(batch,),
        threads_list=(1,))
    return ExecutionEngine(spec.table_sizes, dim, uniform, thresholds,
                           varied=True, resilience=resilience)


def _scenarios(seed: int, spec: DlrmDatasetSpec
               ) -> List[Dict[str, object]]:
    """The escalating fault scenarios, all keyed off one seed."""
    return [
        {
            "name": "baseline",
            "injector": FaultInjector(seed=seed),
            "ladder": None,
        },
        {
            "name": "crash-spike-transient",
            "injector": FaultInjector(
                seed=seed,
                crash=ReplicaCrashFault(probability=0.05,
                                        downtime_seconds=0.040),
                spike=LatencySpikeFault(probability=0.15, multiplier=4.0),
                transient=TransientErrorFault(probability=0.15)),
            "ladder": None,
        },
        {
            "name": "stash-pressure",
            "injector": FaultInjector(
                seed=seed,
                transient=TransientErrorFault(probability=0.02),
                stash=StashPressureFault(probability=0.60,
                                         capacity_fraction=0.25)),
            "ladder": DegradationLadder(table_size=max(spec.table_sizes),
                                        trigger_after=2,
                                        audit_seed=seed),
        },
    ]


def run_chaos(seed: int = 0, spec: DlrmDatasetSpec = TERABYTE_SPEC,
              num_requests: int = NUM_REQUESTS, rate_rps: float = RATE_RPS,
              batch: int = BATCH,
              sla_seconds: float = SLA_SECONDS) -> Dict[str, object]:
    """Run every scenario; return the JSON-stable chaos report."""
    config = ServingConfig(batch_size=batch, threads=1,
                           sla_seconds=sla_seconds)
    policy = BatchingPolicy(max_batch_size=batch, max_wait_seconds=0.002)

    # Fault-free reference run for p99 inflation.
    reference = _build_engine(spec, batch, None)
    baseline_report = reference.serve_poisson(num_requests, rate_rps,
                                              config, policy=policy,
                                              rng=seed)

    scenario_digests: List[Dict[str, object]] = []
    all_available = True
    all_audits_passed = True
    for scenario in _scenarios(seed, spec):
        injector: FaultInjector = scenario["injector"]
        resilience = ResiliencePolicy(
            injector=injector,
            retry=RetryPolicy(deadline_seconds=0.500),
            num_replicas=3, min_replicas=1,
            ladder=scenario["ladder"])
        engine = _build_engine(spec, batch, resilience)
        report = engine.serve_poisson(num_requests, rate_rps, config,
                                      policy=policy, rng=seed)
        assert isinstance(report, ResilientServingReport)
        digest = report.to_dict(sla_seconds=sla_seconds)
        digest["name"] = scenario["name"]
        digest["p99_inflation"] = report.p99_inflation(baseline_report)
        digest["fault_schedule"] = injector.schedule(
            max(1, report.num_batches), resilience.num_replicas,
            attempts=resilience.retry.max_attempts)
        scenario_digests.append(digest)
        if report.availability < AVAILABILITY_FLOOR:
            all_available = False
        if any(not event.audit_passed
               for event in report.degradation_events):
            all_audits_passed = False

    return {
        "seed": seed,
        "spec": spec.name,
        "num_requests": num_requests,
        "rate_rps": rate_rps,
        "batch_size": batch,
        "sla_seconds": sla_seconds,
        "availability_floor": AVAILABILITY_FLOOR,
        "baseline_p99_seconds": baseline_report.p99,
        "scenarios": scenario_digests,
        "gates": {
            "availability": all_available,
            "degradation_audits": all_audits_passed,
            "passed": all_available and all_audits_passed,
        },
    }


def render(report: Dict[str, object]) -> str:
    """Human-readable chaos summary."""
    lines = [f"chaos run (seed={report['seed']}, spec={report['spec']}, "
             f"{report['num_requests']} requests @ "
             f"{report['rate_rps']:.0f} rps)"]
    for scenario in report["scenarios"]:
        lines.append(
            f"  {scenario['name']:<24} availability="
            f"{scenario['availability']:.4f}  p99="
            f"{scenario['p99_seconds'] * 1e3:.3f} ms "
            f"({scenario['p99_inflation']:.2f}x)  "
            f"sla_violations={scenario['sla_violations']}  "
            f"retries={scenario['retries_total']}  "
            f"shed={scenario['shed_requests']}  "
            f"degradations={len(scenario['degradations'])}")
        for event in scenario["degradations"]:
            verdict = "ok" if event["audit_passed"] else "LEAKY"
            lines.append(f"    degraded {event['from']} -> {event['to']} "
                         f"(batch {event['batch_index']}, "
                         f"{event['cause']}): audit {verdict}")
    gates = report["gates"]
    lines.append(f"  gates: availability={'PASS' if gates['availability'] else 'FAIL'} "
                 f"degradation_audits={'PASS' if gates['degradation_audits'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Replay the serving sweep under injected faults.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=NUM_REQUESTS)
    parser.add_argument("--rate", type=float, default=RATE_RPS)
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic chaos report")
    args = parser.parse_args(argv)

    report = run_chaos(seed=args.seed, num_requests=args.requests,
                       rate_rps=args.rate)
    print(render(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
