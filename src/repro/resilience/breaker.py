"""A per-replica circuit breaker (closed → open → half-open → closed).

Guards each replica in the fleet: consecutive failures trip the breaker
OPEN (the replica is evicted from dispatch), a cooldown later it admits a
HALF_OPEN probe, and enough probe successes readmit it CLOSED. Time is the
simulation clock (seconds), passed explicitly — the breaker never reads a
wall clock, so chaos runs stay deterministic.

The fleet-wide worst state is exported as the ``breaker.state`` gauge
(0 = closed, 1 = half-open, 2 = open) by the dispatch layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive, check_positive_finite

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: numeric encoding for the ``breaker.state`` gauge
STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one circuit breaker."""

    failure_threshold: int = 3      # consecutive failures that trip OPEN
    cooldown_seconds: float = 0.050  # OPEN dwell before a half-open probe
    probe_successes: int = 2        # half-open successes that re-close

    def __post_init__(self) -> None:
        check_positive("failure_threshold", self.failure_threshold)
        check_positive_finite("cooldown_seconds", self.cooldown_seconds)
        check_positive("probe_successes", self.probe_successes)


class CircuitBreaker:
    """State machine guarding one replica."""

    def __init__(self, config: BreakerConfig = BreakerConfig()) -> None:
        self.config = config
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._opened_at = -math.inf
        self.trips = 0          # lifetime CLOSED/HALF_OPEN -> OPEN count
        self.readmissions = 0   # lifetime HALF_OPEN -> CLOSED count

    # ------------------------------------------------------------------
    def state(self, now_seconds: float) -> str:
        """Current state, resolving the OPEN→HALF_OPEN cooldown lazily."""
        if self._state == OPEN and (now_seconds - self._opened_at
                                    >= self.config.cooldown_seconds):
            return HALF_OPEN
        return self._state

    def state_value(self, now_seconds: float) -> float:
        return STATE_VALUES[self.state(now_seconds)]

    def allows(self, now_seconds: float) -> bool:
        """May a request be dispatched to this replica right now?"""
        return self.state(now_seconds) != OPEN

    def retry_at(self) -> float:
        """Earliest time an OPEN breaker will admit a probe."""
        if self._state != OPEN:
            return -math.inf
        return self._opened_at + self.config.cooldown_seconds

    # ------------------------------------------------------------------
    def record_success(self, now_seconds: float) -> None:
        state = self.state(now_seconds)
        if state == HALF_OPEN:
            self._probe_streak += 1
            if self._probe_streak >= self.config.probe_successes:
                self._state = CLOSED
                self._probe_streak = 0
                self._consecutive_failures = 0
                self.readmissions += 1
            else:
                # Remain half-open (probing) without re-tripping cooldown.
                self._state = OPEN
                self._opened_at = now_seconds - self.config.cooldown_seconds
        else:
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self, now_seconds: float) -> None:
        state = self.state(now_seconds)
        if state == HALF_OPEN:
            # Failed probe: back to a fresh OPEN window.
            self._trip(now_seconds)
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.failure_threshold:
            self._trip(now_seconds)

    def _trip(self, now_seconds: float) -> None:
        self._state = OPEN
        self._opened_at = now_seconds
        self._consecutive_failures = 0
        self._probe_streak = 0
        self.trips += 1
